"""Yield-aware robust evaluation: corner sets, batched sweeps, screening.

A nominal Pareto front answers "what is the best buildable trade-off at
the exact optimized component values" — but boards ship with E-series
parts, regulator drift, and a temperature range, and a nominally
optimal design can lose 40 % of its margin before the first unit leaves
the line.  This module turns that manufacturing reality into
first-class optimization objectives:

* :class:`CornerSet` — a deterministic set of multiplicative /
  additive perturbations in **physical** component space: tolerance
  corners from a :class:`~repro.core.tolerance.ToleranceSpec`, bias
  corners (offset-only, so the sparse tier's Woodbury update applies),
  temperature corners from :class:`TemperatureCoefficients`, and
  Monte-Carlo samples drawn with the exact RNG consumption of the
  scalar :func:`~repro.core.tolerance.monte_carlo_yield` loop.
  Corner sets compose with ``+``.
* :class:`RobustEvaluator` — evaluates one candidate's **entire**
  corner set as a single
  :meth:`~repro.core.engine.CompiledTemplate.performance_batch_physical_isolated`
  call, so a 64-corner sweep costs one batched MNA factorization, not
  64 scalar circuit builds.  Corner failures quarantine through the
  :class:`~repro.optimize.faults.EvaluationFailure` taxonomy with the
  healthy corners bit-identical to an all-healthy sweep.
* :class:`QuadraticSurrogate` — a deterministic numpy-only ridge
  quadratic fit on the evaluation history that pre-screens each
  generation: only the most promising ``screen_fraction`` of
  candidates pays for a full corner sweep, the rest carry clipped
  surrogate predictions.  Every screen decision is journaled as a
  ``screen_decision`` event (the sibling of ``backend_decision`` /
  ``solver_decision``).
* :func:`build_robust_problem` — the three-objective
  ``(NFworst, -GTworst, -yield)`` problem for NSGA-II / goal
  attainment, with the nominal design constraints intact; and
  :class:`RobustScalarObjective` — a picklable robust scalarization
  for DE / PSO / the fleet workers / the ``robust.optimize`` service
  job.
* :class:`RobustStateSink` — an ``on_generation`` wrapper that rides
  the corner RNG + surrogate state inside optimizer checkpoints (the
  telemetry slot), so a SIGKILLed robust run resumes bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import CompiledTemplate
from repro.core.objectives import DesignSpec
from repro.core.tolerance import ToleranceSpec
from repro.guards import contracts as _contracts
from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.rf.frequency import FrequencyGrid

__all__ = [
    "CornerSet",
    "TemperatureCoefficients",
    "QuadraticSurrogate",
    "RobustFigures",
    "RobustEvaluator",
    "RobustStateSink",
    "RobustScalarObjective",
    "build_robust_problem",
    "robust_score",
]

_N_VARS = len(DesignVariables.NAMES)
_INDEX = {name: i for i, name in enumerate(DesignVariables.NAMES)}
#: Variable columns per element class (physical-space perturbations).
INDUCTOR_VARS = tuple(_INDEX[n] for n in ("l_in", "l_deg", "l_choke"))
CAPACITOR_VARS = tuple(_INDEX[n] for n in ("c_in", "c_out", "c_sh"))
RESISTOR_VARS = tuple(_INDEX[n] for n in ("r_stab", "r_sh"))
BIAS_VARS = (_INDEX["vgs"], _INDEX["vds"])

#: Worst-case figures reported when *every* corner of a candidate
#: quarantined — finite, so downstream sorting and Pareto filtering
#: stay well-defined, and far outside any physical LNA's range.
PENALTY_NF_DB = 1.0e3
PENALTY_GT_DB = -1.0e3


@dataclass(frozen=True)
class TemperatureCoefficients:
    """First-order drift of the element classes with temperature.

    Reactives and resistors drift by their ppm/K tempco; the HEMT's
    threshold shifts the effective gate overdrive by ``vgs_mv_per_k``
    (negative: the device turns on harder when hot).  Values are
    catalogue-typical for wirewound chip inductors, NP0/C0G capacitors,
    and thin-film resistors.
    """

    inductor_ppm_per_k: float = 200.0
    capacitor_ppm_per_k: float = 300.0
    resistor_ppm_per_k: float = 100.0
    vgs_mv_per_k: float = -1.0
    t_ref_c: float = 25.0


def _ensure_finite(values: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {values!r}")
    return arr


@dataclass(frozen=True)
class CornerSet:
    """Deterministic perturbations of a physical design vector.

    Corner ``c`` maps a physical vector ``x`` to
    ``x * scale[c] + offset[c]`` — multiplicative for component
    tolerances (a +5 % inductor is +5 % whatever its nominal), additive
    for bias drift (the regulator misses by millivolts, not percent).
    Corners are applied in physical space on purpose: a tolerance
    corner of a design near the box edge lands *outside* the
    optimization box, and it must — the board house does not clip.

    Compose sets with ``+``; build them with :meth:`from_tolerances`,
    :meth:`bias`, :meth:`temperature`, and :meth:`monte_carlo`.
    """

    names: Tuple[str, ...]
    scale: np.ndarray    # (C, n) multiplicative
    offset: np.ndarray   # (C, n) additive

    def __post_init__(self):
        scale = np.atleast_2d(_ensure_finite(self.scale, "scale"))
        offset = np.atleast_2d(_ensure_finite(self.offset, "offset"))
        if scale.shape != offset.shape or scale.ndim != 2:
            raise ValueError(
                f"scale and offset must be matching (C, n) arrays, got "
                f"{scale.shape} and {offset.shape}")
        if len(self.names) != scale.shape[0]:
            raise ValueError(
                f"{len(self.names)} corner names for {scale.shape[0]} "
                f"corner rows")
        if np.any(scale <= 0.0):
            raise ValueError(
                "scale must be positive: a non-positive component "
                "multiplier is not a tolerance, it is a different circuit")
        object.__setattr__(self, "names", tuple(str(n) for n in self.names))
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "offset", offset)

    @property
    def n_corners(self) -> int:
        return self.scale.shape[0]

    @property
    def n_vars(self) -> int:
        return self.scale.shape[1]

    def __len__(self) -> int:
        return self.n_corners

    @property
    def is_bias_only(self) -> bool:
        """True when only the bias columns are perturbed (offset-only).

        Such a corner batch varies only the ``vgs``/``vds`` admittance
        groups within one candidate's sweep, which is exactly the
        low-rank structure the sparse tier's Woodbury update exploits.
        """
        if not np.allclose(self.scale, 1.0, rtol=0.0, atol=0.0):
            return False
        passive = np.ones(self.n_vars, dtype=bool)
        passive[list(BIAS_VARS)] = False
        return not np.any(self.offset[:, passive])

    def apply(self, x_physical: np.ndarray) -> np.ndarray:
        """The ``(C, n)`` corner matrix of one physical design vector."""
        x_physical = np.asarray(x_physical, dtype=float)
        if x_physical.shape != (self.n_vars,):
            raise ValueError(
                f"expected a ({self.n_vars},) physical vector, got shape "
                f"{x_physical.shape}")
        return x_physical[None, :] * self.scale + self.offset

    def __add__(self, other: "CornerSet") -> "CornerSet":
        if not isinstance(other, CornerSet):
            return NotImplemented
        if other.n_vars != self.n_vars:
            raise ValueError("cannot combine corner sets of different width")
        return CornerSet(
            names=self.names + other.names,
            scale=np.vstack([self.scale, other.scale]),
            offset=np.vstack([self.offset, other.offset]),
        )

    # -- constructors -------------------------------------------------------
    @classmethod
    def nominal(cls) -> "CornerSet":
        """The identity corner (the unperturbed board)."""
        return cls(("nominal",), np.ones((1, _N_VARS)),
                   np.zeros((1, _N_VARS)))

    @classmethod
    def from_tolerances(cls,
                        tolerances: Optional[ToleranceSpec] = None,
                        ) -> "CornerSet":
        """Per-class low/high extremes plus the all-low/all-high corners.

        Ten corners: each element class (L, C, R) pushed to both
        tolerance extremes with everything else nominal, both bias
        rails at their drift extremes, and the two fully-correlated
        corners where every part lands at the same end of its band —
        the classic worst-case-analysis corner book.
        """
        tolerances = tolerances or ToleranceSpec()
        names: List[str] = []
        scale_rows: List[np.ndarray] = []
        offset_rows: List[np.ndarray] = []

        def corner(name, sign, classes, bias=False):
            scale = np.ones(_N_VARS)
            offset = np.zeros(_N_VARS)
            for cols, width in classes:
                scale[list(cols)] = 1.0 + sign * width
            if bias:
                offset[BIAS_VARS[0]] = sign * tolerances.vgs_volts
                offset[BIAS_VARS[1]] = sign * tolerances.vds_volts
            names.append(name)
            scale_rows.append(scale)
            offset_rows.append(offset)

        classes = (
            ("L", ((INDUCTOR_VARS, tolerances.inductor),)),
            ("C", ((CAPACITOR_VARS, tolerances.capacitor),)),
            ("R", ((RESISTOR_VARS, tolerances.resistor),)),
        )
        for label, spec in classes:
            corner(f"{label}-low", -1.0, spec)
            corner(f"{label}-high", +1.0, spec)
        corner("bias-low", -1.0, (), bias=True)
        corner("bias-high", +1.0, (), bias=True)
        everything = (
            (INDUCTOR_VARS, tolerances.inductor),
            (CAPACITOR_VARS, tolerances.capacitor),
            (RESISTOR_VARS, tolerances.resistor),
        )
        corner("all-low", -1.0, everything, bias=True)
        corner("all-high", +1.0, everything, bias=True)
        return cls(tuple(names), np.array(scale_rows),
                   np.array(offset_rows))

    @classmethod
    def bias(cls, vgs_delta: float = 0.01,
             vds_delta: float = 0.05) -> "CornerSet":
        """Four offset-only regulator-drift corners (Woodbury-eligible)."""
        _ensure_finite([vgs_delta, vds_delta], "bias deltas")
        names = []
        offsets = []
        for sg in (-1.0, +1.0):
            for sd in (-1.0, +1.0):
                names.append(f"bias({sg:+.0f}vgs,{sd:+.0f}vds)")
                row = np.zeros(_N_VARS)
                row[BIAS_VARS[0]] = sg * vgs_delta
                row[BIAS_VARS[1]] = sd * vds_delta
                offsets.append(row)
        return cls(tuple(names), np.ones((4, _N_VARS)), np.array(offsets))

    @classmethod
    def temperature(cls, t_min_c: float = -40.0, t_max_c: float = 85.0,
                    tc: Optional[TemperatureCoefficients] = None,
                    ) -> "CornerSet":
        """Cold/hot corners from first-order temperature coefficients."""
        tc = tc or TemperatureCoefficients()
        _ensure_finite([t_min_c, t_max_c], "temperature range")
        if t_min_c >= t_max_c:
            raise ValueError(
                f"t_min_c must be below t_max_c, got [{t_min_c}, {t_max_c}]")
        names = []
        scale_rows = []
        offset_rows = []
        for label, t_c in (("cold", t_min_c), ("hot", t_max_c)):
            dt = t_c - tc.t_ref_c
            scale = np.ones(_N_VARS)
            scale[list(INDUCTOR_VARS)] = 1.0 + 1e-6 * tc.inductor_ppm_per_k * dt
            scale[list(CAPACITOR_VARS)] = (
                1.0 + 1e-6 * tc.capacitor_ppm_per_k * dt)
            scale[list(RESISTOR_VARS)] = 1.0 + 1e-6 * tc.resistor_ppm_per_k * dt
            offset = np.zeros(_N_VARS)
            offset[BIAS_VARS[0]] = 1e-3 * tc.vgs_mv_per_k * dt
            names.append(f"temp-{label}({t_c:+.0f}C)")
            scale_rows.append(scale)
            offset_rows.append(offset)
        return cls(tuple(names), np.array(scale_rows),
                   np.array(offset_rows))

    @classmethod
    def monte_carlo(cls, tolerances: Optional[ToleranceSpec] = None,
                    n_trials: int = 16,
                    rng=0) -> "CornerSet":
        """Uniform Monte-Carlo corners matching the scalar trial loop.

        Each trial draws one uniform variate per design variable **in
        :data:`DesignVariables.NAMES` order** — exactly the RNG
        consumption of the scalar ``monte_carlo_yield`` ``_perturb``
        loop, so given the same generator the batched sweep perturbs
        bit-identical boards.
        """
        tolerances = tolerances or ToleranceSpec()
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        widths_rel = np.zeros(_N_VARS)
        widths_rel[list(INDUCTOR_VARS)] = tolerances.inductor
        widths_rel[list(CAPACITOR_VARS)] = tolerances.capacitor
        widths_rel[list(RESISTOR_VARS)] = tolerances.resistor
        widths_abs = np.zeros(_N_VARS)
        widths_abs[BIAS_VARS[0]] = tolerances.vgs_volts
        widths_abs[BIAS_VARS[1]] = tolerances.vds_volts

        u = rng.random((int(n_trials), _N_VARS))
        swing = 2.0 * u - 1.0
        scale = 1.0 + widths_rel[None, :] * swing
        offset = widths_abs[None, :] * swing
        names = tuple(f"mc-{k:03d}" for k in range(int(n_trials)))
        return cls(names, scale, offset)


def robust_score(nf_worst_db, gt_worst_db, yield_fraction,
                 yield_weight: float = 5.0, gt_weight: float = 0.05):
    """Scalar robust merit (lower is better).

    Worst-case noise figure, a small pull toward worst-case gain, and a
    yield shortfall penalty.  Used both to rank candidates for the
    surrogate pre-screen and as the :class:`RobustScalarObjective`
    value, so the screen optimizes the same quantity the scalarized
    optimizers do.
    """
    nf = np.asarray(nf_worst_db, dtype=float)
    gt = np.asarray(gt_worst_db, dtype=float)
    y = np.clip(np.asarray(yield_fraction, dtype=float), 0.0, 1.0)
    return nf - gt_weight * gt + yield_weight * (1.0 - y)


class QuadraticSurrogate:
    """Deterministic ridge quadratic fit on the evaluation history.

    Predicts ``(yield, NFworst, GTworst)`` from the unit design vector
    using the full quadratic feature map (``1 + n + n(n+1)/2``
    monomials).  The model refits from its stored history on every
    predict via normal equations with a fixed ridge — no iterative
    state, so identical history produces bit-identical predictions,
    which is what lets surrogate state ride checkpoints for
    bit-for-bit resume.
    """

    def __init__(self, n_vars: int = _N_VARS, n_outputs: int = 3,
                 min_fit: int = 32, max_history: int = 512,
                 ridge: float = 1e-6):
        if min_fit < 4:
            raise ValueError(f"min_fit must be >= 4, got {min_fit}")
        self.n_vars = int(n_vars)
        self.n_outputs = int(n_outputs)
        self.min_fit = int(min_fit)
        self.max_history = int(max_history)
        self.ridge = float(ridge)
        self._x = np.empty((0, self.n_vars))
        self._y = np.empty((0, self.n_outputs))

    def __len__(self) -> int:
        return self._x.shape[0]

    @property
    def ready(self) -> bool:
        return len(self) >= self.min_fit

    def observe(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have matching rows")
        self._x = np.vstack([self._x, x])[-self.max_history:]
        self._y = np.vstack([self._y, y])[-self.max_history:]

    def _features(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        b, n = x.shape
        iu, ju = np.triu_indices(n)
        return np.hstack([
            np.ones((b, 1)),
            x,
            x[:, iu] * x[:, ju],
        ])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """``(B, n_outputs)`` predictions; raises before :attr:`ready`."""
        if not self.ready:
            raise RuntimeError(
                f"surrogate has {len(self)} observations, needs "
                f">= {self.min_fit} before predicting")
        train = self._features(self._x)
        gram = train.T @ train
        gram[np.diag_indices_from(gram)] += self.ridge
        weights = np.linalg.solve(gram, train.T @ self._y)
        return self._features(x) @ weights

    def state(self) -> dict:
        return {"x": self._x.copy(), "y": self._y.copy()}

    def restore(self, state: dict) -> None:
        self._x = np.asarray(state["x"], dtype=float).reshape(-1, self.n_vars)
        self._y = np.asarray(state["y"],
                             dtype=float).reshape(-1, self.n_outputs)


@dataclass
class RobustFigures:
    """Per-candidate robust figures of one ``evaluate_batch`` call.

    Rows where ``screened`` is True carry (clipped) surrogate
    predictions instead of swept values; ``n_quarantined`` counts the
    corners that failed through the :class:`EvaluationFailure`
    taxonomy (quarantined corners always count against yield).
    """

    yield_fraction: np.ndarray   # (B,) in [0, 1]
    nf_worst_db: np.ndarray      # (B,) max over healthy corners
    gt_worst_db: np.ndarray      # (B,) min over healthy corners
    mu_worst: np.ndarray         # (B,)
    screened: np.ndarray         # (B,) bool
    n_quarantined: np.ndarray    # (B,) int

    def __len__(self) -> int:
        return self.yield_fraction.shape[0]


class RobustEvaluator:
    """Batched corner sweeps with surrogate pre-screening.

    One candidate's entire corner set is one
    ``performance_batch_physical_isolated`` call — the whole sweep
    shares a single batched MNA factorization, and bias-only corner
    sets ride the sparse tier's Woodbury update.  A corner whose solve
    fails quarantines through the standard failure taxonomy: it counts
    as a yield fail, worst-case figures are taken over the healthy
    corners only, and the healthy corners stay bit-identical to a sweep
    without the sick corner.

    When ``screen_fraction < 1`` and the surrogate has enough history,
    only the best-ranked fraction of each batch pays for a sweep; the
    rest carry surrogate predictions (flagged in
    :attr:`RobustFigures.screened`).  Every decision is journaled as a
    ``screen_decision`` event.  All screening state — the corner
    arrays, the Monte-Carlo RNG, the surrogate history, the counters —
    round-trips through :meth:`state` / :meth:`restore` so robust runs
    checkpoint and resume bit-for-bit (ride it on the optimizer's
    ``on_generation`` slot via :class:`RobustStateSink`).
    """

    def __init__(self, template: AmplifierTemplate,
                 corners: Optional[CornerSet] = None,
                 tolerances: Optional[ToleranceSpec] = None,
                 n_mc_trials: int = 0,
                 seed: Optional[int] = 0,
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 solver: str = "auto",
                 nf_ship_limit_db: float = 0.8,
                 gt_ship_limit_db: float = 13.0,
                 mu_ship: float = 1.0,
                 screen_fraction: float = 1.0,
                 min_screen_history: int = 32,
                 surrogate: Optional[QuadraticSurrogate] = None,
                 compiled: Optional[CompiledTemplate] = None):
        if not 0.0 < screen_fraction <= 1.0:
            raise ValueError(
                f"screen_fraction must be in (0, 1], got {screen_fraction}")
        self.band_grid = band_grid or design_grid(13)
        self.guard_grid = guard_grid or stability_grid(16)
        self._compiled = compiled or CompiledTemplate(
            template, self.band_grid, self.guard_grid,
            verify=False, solver=solver,
        )
        self.nf_ship_limit_db = float(nf_ship_limit_db)
        self.gt_ship_limit_db = float(gt_ship_limit_db)
        self.mu_ship = float(mu_ship)
        self.screen_fraction = float(screen_fraction)
        self._rng = np.random.default_rng(seed)
        corners = corners or CornerSet.from_tolerances(tolerances)
        if n_mc_trials:
            corners = corners + CornerSet.monte_carlo(
                tolerances, n_mc_trials, self._rng)
        self.corners = corners
        self.surrogate = surrogate or QuadraticSurrogate(
            n_vars=_N_VARS, min_fit=min_screen_history)
        self.n_sweeps = 0
        self.n_corner_evals = 0
        self.n_screened = 0

    # -- the sweep ----------------------------------------------------------
    def _sweep_one(self, x_physical: np.ndarray):
        """Full corner sweep of one candidate: one batched solve."""
        corner_x = self.corners.apply(x_physical)
        batch, failures, _ = (
            self._compiled.performance_batch_physical_isolated(corner_x))
        quarantined = np.array([f is not None for f in failures])
        healthy = ~quarantined
        passing = (healthy
                   & (batch.nf_max_db <= self.nf_ship_limit_db)
                   & (batch.gt_min_db >= self.gt_ship_limit_db)
                   & (batch.mu_min > self.mu_ship))
        yield_fraction = float(np.mean(passing))
        if np.any(healthy):
            nf_worst = float(np.max(batch.nf_max_db[healthy]))
            gt_worst = float(np.min(batch.gt_min_db[healthy]))
            mu_worst = float(np.min(batch.mu_min[healthy]))
        else:
            nf_worst = PENALTY_NF_DB
            gt_worst = PENALTY_GT_DB
            mu_worst = 0.0
        self.n_sweeps += 1
        self.n_corner_evals += self.corners.n_corners
        _obs_metrics.inc("robust.corner_evals", self.corners.n_corners)
        return (yield_fraction, nf_worst, gt_worst, mu_worst,
                int(np.sum(quarantined)))

    def evaluate_batch(self, unit_x: np.ndarray,
                       screen: Optional[bool] = None) -> RobustFigures:
        """Robust figures for a ``(B, n)`` stack of unit design vectors.

        With ``screen=None`` the configured ``screen_fraction``
        applies once the surrogate is trained; ``screen=False`` forces
        a full sweep of every row (used for final-front re-evaluation,
        so reported fronts never carry surrogate numbers).
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        n_batch = unit_x.shape[0]
        x_physical = self._compiled._to_physical(unit_x)

        want_screen = self.screen_fraction < 1.0 if screen is None else screen
        active = (want_screen and self.screen_fraction < 1.0
                  and self.surrogate.ready)
        if active:
            predicted = self.surrogate.predict(unit_x)
            score = robust_score(predicted[:, 1], predicted[:, 2],
                                 predicted[:, 0])
            n_full = max(1, int(math.ceil(self.screen_fraction * n_batch)))
            # Stable sort, then ascending row order: the sweep sequence
            # is a pure function of (history, batch), never of dict or
            # set iteration order — resume replays it exactly.
            shortlist = np.sort(np.argsort(score, kind="stable")[:n_full])
            mode = "surrogate"
        else:
            predicted = None
            shortlist = np.arange(n_batch)
            n_full = n_batch
            mode = "full" if self.surrogate.ready else "warmup"
        _obs_journal.emit("screen_decision",
                          batch=int(n_batch),
                          n_full=int(n_full),
                          n_screened=int(n_batch - n_full),
                          history=len(self.surrogate),
                          mode=mode)
        if n_batch > n_full:
            self.n_screened += n_batch - n_full
            _obs_metrics.inc("robust.screened", n_batch - n_full)

        figures = RobustFigures(
            yield_fraction=np.empty(n_batch),
            nf_worst_db=np.empty(n_batch),
            gt_worst_db=np.empty(n_batch),
            mu_worst=np.empty(n_batch),
            screened=np.ones(n_batch, dtype=bool),
            n_quarantined=np.zeros(n_batch, dtype=int),
        )
        if predicted is not None:
            figures.yield_fraction[:] = np.clip(predicted[:, 0], 0.0, 1.0)
            figures.nf_worst_db[:] = predicted[:, 1]
            figures.gt_worst_db[:] = predicted[:, 2]
            figures.mu_worst[:] = self.mu_ship  # unknown without a sweep

        with _obs_tracer.span("robust.evaluate_batch",
                              batch=n_batch, n_full=int(n_full),
                              corners=self.corners.n_corners):
            observed_x: List[np.ndarray] = []
            observed_y: List[List[float]] = []
            for i in shortlist:
                y_frac, nf, gt, mu, n_quar = self._sweep_one(x_physical[i])
                figures.yield_fraction[i] = y_frac
                figures.nf_worst_db[i] = nf
                figures.gt_worst_db[i] = gt
                figures.mu_worst[i] = mu
                figures.screened[i] = False
                figures.n_quarantined[i] = n_quar
                if n_quar < self.corners.n_corners:
                    observed_x.append(unit_x[i])
                    observed_y.append([y_frac, nf, gt])
            if observed_x:
                self.surrogate.observe(np.array(observed_x),
                                       np.array(observed_y))

        _contracts.check_yield_fraction(figures.yield_fraction,
                                        "robust.evaluate_batch")
        _contracts.check_finite(figures.nf_worst_db,
                                "robust.evaluate_batch worst-case NF")
        return figures

    # -- checkpoint state ---------------------------------------------------
    def state(self) -> dict:
        return {
            "rng": self._rng.bit_generator.state,
            "corners": {
                "names": list(self.corners.names),
                "scale": self.corners.scale.copy(),
                "offset": self.corners.offset.copy(),
            },
            "surrogate": self.surrogate.state(),
            "counters": {
                "n_sweeps": self.n_sweeps,
                "n_corner_evals": self.n_corner_evals,
                "n_screened": self.n_screened,
            },
        }

    def restore(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        corners = state["corners"]
        self.corners = CornerSet(
            tuple(corners["names"]),
            np.asarray(corners["scale"], dtype=float),
            np.asarray(corners["offset"], dtype=float),
        )
        self.surrogate.restore(state["surrogate"])
        counters = state["counters"]
        self.n_sweeps = int(counters["n_sweeps"])
        self.n_corner_evals = int(counters["n_corner_evals"])
        self.n_screened = int(counters["n_screened"])


class RobustStateSink:
    """``on_generation`` wrapper riding robust state inside checkpoints.

    Optimizer checkpoints store ``on_generation.state()`` in their
    telemetry slot; wrapping the journal (or any telemetry sink) with
    this class extends that slot with the evaluator's corner-RNG,
    surrogate history, and counters — the pieces a SIGKILLed robust run
    needs restored for bit-for-bit resume.  It also translates the
    NSGA-II per-objective minima into named robust columns
    (``nf_worst_best``, ``yield_best``) on each generation record, so
    ``repro-obs summary`` can report them after a replay.
    """

    def __init__(self, evaluator: RobustEvaluator, inner=None):
        self._evaluator = evaluator
        self._inner = inner

    def __call__(self, record) -> None:
        extra = getattr(record, "extra", None)
        if isinstance(extra, dict):
            # Objective order of build_robust_problem:
            # f0 = NFworst, f1 = -GTworst, f2 = -yield.
            if "min_f0" in extra:
                extra["nf_worst_best"] = float(extra["min_f0"])
            if "min_f2" in extra:
                extra["yield_best"] = -float(extra["min_f2"])
        if self._inner is not None:
            self._inner(record)

    def state(self) -> dict:
        inner_state = None
        if self._inner is not None and hasattr(self._inner, "state"):
            inner_state = self._inner.state()
        return {"robust": self._evaluator.state(), "inner": inner_state}

    def restore(self, state) -> None:
        if not isinstance(state, dict) or "robust" not in state:
            # Telemetry written by a non-robust run: pass it through.
            if self._inner is not None and hasattr(self._inner, "restore"):
                self._inner.restore(state)
            return
        self._evaluator.restore(state["robust"])
        if state.get("inner") is not None and self._inner is not None \
                and hasattr(self._inner, "restore"):
            self._inner.restore(state["inner"])


def build_robust_problem(template: AmplifierTemplate,
                         spec: Optional[DesignSpec] = None,
                         evaluator: Optional[RobustEvaluator] = None,
                         **evaluator_kwargs) -> MultiObjectiveProblem:
    """The three-objective robust problem for NSGA-II/goal attainment.

    Minimizes ``(NFworst_dB, -GTworst_dB, -yield)`` over the unit box,
    subject to the same five hard design constraints as the nominal
    :func:`~repro.core.objectives.build_lna_problem` — evaluated at the
    *nominal* point, because shipping limits are judged per corner by
    the yield objective itself.  Nominal figures and corner sweeps
    share one compiled engine; a one-entry memo makes the usual
    objective-then-constraints call pattern cost a single evaluation.
    """
    spec = spec or DesignSpec()
    evaluator = evaluator or RobustEvaluator(template, **evaluator_kwargs)
    compiled = evaluator._compiled
    memo: Dict[str, object] = {"key": None}

    def _evaluate(unit_x: np.ndarray):
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        key = unit_x.tobytes()
        if memo["key"] == key:
            return memo["objectives"], memo["constraints"]
        nominal, _, _ = compiled.performance_batch_isolated(unit_x)
        robust = evaluator.evaluate_batch(unit_x)
        objectives = np.column_stack([
            robust.nf_worst_db,
            -robust.gt_worst_db,
            -robust.yield_fraction,
        ])
        constraints = np.column_stack([
            np.max(nominal.s11_db, axis=1) + spec.rl_spec_db,
            np.max(nominal.s22_db, axis=1) + spec.rl_spec_db,
            spec.mu_margin - nominal.mu_min,
            nominal.gt_ripple_db - spec.ripple_spec_db,
            (nominal.ids - spec.ids_max) / spec.ids_max,
        ])
        memo.update(key=key, objectives=objectives, constraints=constraints)
        return objectives, constraints

    def objectives(x: np.ndarray) -> np.ndarray:
        return _evaluate(x)[0][0]

    def constraints(x: np.ndarray) -> np.ndarray:
        return _evaluate(x)[1][0]

    def objectives_batch(x: np.ndarray) -> np.ndarray:
        return _evaluate(x)[0]

    def constraints_batch(x: np.ndarray) -> np.ndarray:
        return _evaluate(x)[1]

    return MultiObjectiveProblem(
        objectives=objectives,
        n_objectives=3,
        lower=np.zeros(_N_VARS),
        upper=np.ones(_N_VARS),
        constraints=constraints,
        objective_names=("NFworst_dB", "-GTworst_dB", "-yield"),
        objectives_batch=objectives_batch,
        constraints_batch=constraints_batch,
    )


class RobustScalarObjective:
    """Picklable robust scalarization for DE / PSO / fleet workers.

    Wraps a :class:`RobustEvaluator` behind the lazy-compile factory
    pattern (the evaluator rebuilds deterministically from the
    constructor arguments inside whichever process unpickles it), and
    scores candidates with :func:`robust_score`.  Screening is
    deliberately off on this path: a scalar objective carries no
    checkpoint slot for surrogate state, and with fixed corners the
    objective is a pure function — which is what makes DE/PSO resume
    and the ``robust.optimize`` service job bit-for-bit recoverable.
    """

    def __init__(self, template: Optional[AmplifierTemplate] = None,
                 tolerances: Optional[ToleranceSpec] = None,
                 n_mc_trials: int = 8,
                 seed: Optional[int] = 0,
                 yield_weight: float = 5.0,
                 n_band: int = 9, n_guard: int = 12,
                 solver: str = "auto",
                 nf_ship_limit_db: float = 0.8,
                 gt_ship_limit_db: float = 13.0):
        self.template = template
        self.tolerances = tolerances
        self.n_mc_trials = int(n_mc_trials)
        self.seed = seed
        self.yield_weight = float(yield_weight)
        self.n_band = int(n_band)
        self.n_guard = int(n_guard)
        self.solver = str(solver)
        self.nf_ship_limit_db = float(nf_ship_limit_db)
        self.gt_ship_limit_db = float(gt_ship_limit_db)
        self._evaluator: Optional[RobustEvaluator] = None

    def _ensure(self) -> RobustEvaluator:
        if self._evaluator is None:
            template = self.template
            if template is None:
                from repro.experiments.common import reference_device
                template = AmplifierTemplate(
                    reference_device().small_signal)
            self._evaluator = RobustEvaluator(
                template,
                tolerances=self.tolerances,
                n_mc_trials=self.n_mc_trials,
                seed=self.seed,
                band_grid=design_grid(self.n_band),
                guard_grid=stability_grid(self.n_guard),
                solver=self.solver,
                nf_ship_limit_db=self.nf_ship_limit_db,
                gt_ship_limit_db=self.gt_ship_limit_db,
            )
        return self._evaluator

    def batch(self, unit_x: np.ndarray) -> np.ndarray:
        figures = self._ensure().evaluate_batch(
            np.atleast_2d(np.asarray(unit_x, dtype=float)), screen=False)
        return robust_score(figures.nf_worst_db, figures.gt_worst_db,
                            figures.yield_fraction,
                            yield_weight=self.yield_weight)

    def __call__(self, unit_x: np.ndarray) -> float:
        return float(self.batch(np.atleast_2d(unit_x))[0])

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_evaluator"] = None  # rebuilt deterministically on demand
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
