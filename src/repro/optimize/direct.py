"""Direct (local) optimization stages built on SciPy.

These wrap the two local workhorses used by the extraction pipeline
and the goal-attainment solver with consistent bounds handling and
evaluation counting:

* :func:`refine_least_squares` — trust-region-reflective nonlinear
  least squares for residual-vector fitting;
* :func:`refine_nelder_mead` — bounded Nelder-Mead for scalar
  objectives (used when residuals are not available).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import optimize as sp_optimize

from repro.optimize.metaheuristics import OptimizationResult

__all__ = ["refine_least_squares", "refine_nelder_mead"]


def refine_least_squares(
    residuals: Callable[[np.ndarray], np.ndarray],
    x0,
    lower,
    upper,
    weights: Optional[np.ndarray] = None,
    max_nfev: int = 2000,
) -> OptimizationResult:
    """Local least-squares refinement of a residual vector.

    Minimizes ``sum((w * residuals(x))**2)`` inside box bounds, starting
    from *x0*.  Returns the same result record as the metaheuristics so
    pipeline stages compose.
    """
    x0 = np.clip(np.asarray(x0, dtype=float), lower, upper)
    if weights is None:
        wrapped = residuals
    else:
        weights = np.asarray(weights, dtype=float)

        def wrapped(x, _w=weights):
            return _w * residuals(x)

    solution = sp_optimize.least_squares(
        wrapped, x0, bounds=(lower, upper), method="trf",
        max_nfev=max_nfev,
    )
    return OptimizationResult(
        x=solution.x,
        fun=float(2.0 * solution.cost),  # cost is 0.5 * sum(r^2)
        nfev=int(solution.nfev),
        n_iterations=int(solution.nfev),
        converged=bool(solution.success),
        history=[float(2.0 * solution.cost)],
        message=str(solution.message),
    )


def refine_nelder_mead(
    objective: Callable[[np.ndarray], float],
    x0,
    lower,
    upper,
    max_iterations: int = 2000,
) -> OptimizationResult:
    """Bounded Nelder-Mead refinement of a scalar objective."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    x0 = np.clip(np.asarray(x0, dtype=float), lower, upper)
    solution = sp_optimize.minimize(
        objective,
        x0,
        method="Nelder-Mead",
        bounds=list(zip(lower, upper)),
        options={"maxiter": max_iterations, "xatol": 1e-10, "fatol": 1e-12},
    )
    return OptimizationResult(
        x=np.asarray(solution.x, dtype=float),
        fun=float(solution.fun),
        nfev=int(solution.nfev),
        n_iterations=int(solution.nit),
        converged=bool(solution.success),
        history=[float(solution.fun)],
        message=str(solution.message),
    )
