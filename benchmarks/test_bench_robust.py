"""Bench: batched vs scalar Monte-Carlo yield analysis.

Times a 64-trial Monte-Carlo yield run of the reference LNA through
both ``monte_carlo_yield`` engines — the scalar per-trial reference
loop and the batched corner engine (one fault-isolated MNA
factorization for all trials) — and writes ``BENCH_robust_yield.json``.
Both engines consume the identical RNG stream and agree to <= 1e-9
(enforced in ``tests/test_tolerance.py``); the acceptance bar here is
>= 5x for the batched engine at 64 trials.
"""

import json
import time

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.core.bands import design_grid, stability_grid
from repro.core.tolerance import ToleranceSpec, monte_carlo_yield
from repro.experiments.common import reference_device

N_TRIALS = 64
ROBUST_GATE_SPEEDUP = 5.0


def _best_of(fn, repeats=20):
    """Minimum over many repeats: per-run times on a shared box are
    noisy by 30-50%, and the min is the only statistic that converges
    to the unloaded cost."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_robust_yield(save_report, report_dir, host_context):
    template = AmplifierTemplate(reference_device().small_signal)
    nominal = DesignVariables()
    tolerances = ToleranceSpec()
    band = design_grid(13)
    guard = stability_grid(16)
    compiled = CompiledTemplate(template, band, guard, verify=False,
                                solver="auto")

    def scalar():
        return monte_carlo_yield(template, nominal, tolerances,
                                 n_trials=N_TRIALS, seed=0,
                                 band_grid=band, guard_grid=guard,
                                 engine="scalar")

    def batched():
        return monte_carlo_yield(template, nominal, tolerances,
                                 n_trials=N_TRIALS, seed=0,
                                 band_grid=band, guard_grid=guard,
                                 engine="batched", compiled=compiled)

    # Warm both paths: scratch buffers, allocator pools, the scalar
    # path's per-evaluation circuit assembly caches.
    for _ in range(3):
        batched()
    scalar_result = scalar()
    batched_result = batched()
    np.testing.assert_allclose(batched_result.nf_max_db,
                               scalar_result.nf_max_db, atol=1e-9)
    assert batched_result.n_pass == scalar_result.n_pass

    t_scalar = _best_of(scalar, repeats=5)  # the slow reference loop
    t_batched = _best_of(batched, repeats=20)
    speedup = t_scalar / t_batched

    payload = {
        "n_trials": N_TRIALS,
        "n_frequencies": int(len(band) + len(guard)),
        "scalar_s": t_scalar,
        "batched_s": t_batched,
        "scalar_trials_per_s": N_TRIALS / t_scalar,
        "batched_trials_per_s": N_TRIALS / t_batched,
        "speedup_batched_vs_scalar": speedup,
        "yield_fraction": scalar_result.yield_fraction,
        "host": host_context(),
    }
    (report_dir / "BENCH_robust_yield.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report = "\n".join([
        f"{N_TRIALS}-trial Monte-Carlo yield "
        f"({len(band)}+{len(guard)} frequencies)",
        f"scalar  : {1e3 * t_scalar:7.1f} ms "
        f"({N_TRIALS / t_scalar:7.1f} trials/s)",
        f"batched : {1e3 * t_batched:7.1f} ms "
        f"({N_TRIALS / t_batched:7.1f} trials/s)  "
        f"speedup {speedup:.2f}x",
    ])
    save_report("BENCH_robust_yield", report)
    print("\n" + report)

    assert speedup >= ROBUST_GATE_SPEEDUP, (
        f"batched yield engine only {speedup:.2f}x over the scalar "
        f"loop at {N_TRIALS} trials (needs >= {ROBUST_GATE_SPEEDUP}x)"
    )
