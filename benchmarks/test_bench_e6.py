"""Bench E6 (Fig. 3): the NF/GT trade-off front."""

import numpy as np

from repro.experiments import e6_tradeoff_front as e6


def test_bench_e6_tradeoff_front(benchmark, save_report):
    result = benchmark.pedantic(
        e6.run, kwargs={"n_points": 4}, rounds=1, iterations=1
    )
    report = e6.format_report(result)
    save_report("E6_fig3_tradeoff_front", report)
    print("\n" + report)

    # The goal-attainment sweep must produce a real front: at least two
    # distinct non-dominated points with a visible NF/GT trade.
    assert result.front.shape[0] >= 2
    nf = result.front[:, 0]
    gt = -result.front[:, 1]
    assert np.all(np.diff(nf) > 0)
    assert np.all(np.diff(gt) > 0)  # more gain costs more noise
    assert gt.max() - gt.min() > 0.5
    # Goal attainment covers at least as much objective space as the
    # weighted-sum baseline.
    assert result.hypervolume_goal >= result.hypervolume_wsum
