"""Benchmarks of the extension features: NSGA-II front and yield analysis.

* NSGA-II is run on the *actual* LNA problem and its feasible front is
  cross-checked against the improved-goal-attainment solution of E5 —
  two independent multi-objective machines agreeing on the same
  trade-off surface.
* Monte-Carlo yield prices the tolerance class of the purchased parts
  on the default design.
"""

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.design import DesignFlow
from repro.core.tolerance import ToleranceSpec, monte_carlo_yield
from repro.devices.reference import make_reference_device
from repro.optimize.nsga2 import nsga2
from repro.optimize.pareto import pareto_filter


def test_bench_nsga2_front_on_lna(benchmark, save_report):
    device = make_reference_device()
    flow = DesignFlow(device.small_signal)

    result = benchmark.pedantic(
        lambda: nsga2(flow.problem, population_size=40, n_generations=50,
                      seed=0),
        rounds=1, iterations=1,
    )
    improved = flow.run_improved(seed=11, n_probe=40, n_starts=3,
                                 tighten_rounds=2)

    front = result.feasible_front
    lines = ["NSGA-II feasible front on the LNA problem "
             f"({result.nfev} evaluations):",
             "NFmax [dB] | GTmin [dB]"]
    order = np.argsort(front[:, 0])
    for nf, neg_gt in front[order]:
        lines.append(f"{nf:10.3f} | {-neg_gt:10.2f}")
    lines.append(
        "improved goal attainment (for comparison, "
        f"{improved.nfev} evaluations): "
        f"{improved.objectives[0]:10.3f} | {-improved.objectives[1]:10.2f}"
    )
    lines.append(
        "On this tightly constrained smooth problem the gradient-based "
        "improved goal attainment reaches a better point per evaluation "
        "than the derivative-free population method — the quantitative "
        "case for the paper's choice of machinery."
    )
    report = "\n".join(lines)
    save_report("extension_nsga2_front", report)
    print("\n" + report)

    # NSGA-II does find feasible sub-1 dB designs...
    assert front.shape[0] >= 1
    assert np.all(front[:, 0] < 1.0)       # NF below 1 dB
    assert np.all(-front[:, 1] > 10.0)     # GT above 10 dB
    kept = pareto_filter(front)
    assert len(kept) == front.shape[0]
    # ...but the improved goal attainment dominates its whole front.
    assert improved.constraint_violation <= 1e-6
    assert np.all(improved.objectives[1] <= front[:, 1] + 1e-9)


def test_bench_yield_vs_tolerance_class(benchmark, save_report):
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    nominal = DesignVariables()

    def run_classes():
        outcomes = {}
        for label, spec in [("tight 2%", ToleranceSpec.tight()),
                            ("standard 5%", ToleranceSpec()),
                            ("loose 10%", ToleranceSpec.loose())]:
            # The shipping gain limit sits ~0.2 dB under the nominal
            # worst-case gain, so the tolerance class is what decides
            # the yield — the realistic margin-pricing situation.
            outcomes[label] = monte_carlo_yield(
                template, nominal, tolerances=spec, n_trials=40, seed=7,
                gt_ship_limit_db=11.8,
            )
        return outcomes

    outcomes = benchmark.pedantic(run_classes, rounds=1, iterations=1)

    lines = ["Monte-Carlo shipping yield vs component tolerance class",
             "class        | yield | NFmax p95 [dB] | GTmin p5 [dB]"]
    for label, result in outcomes.items():
        lines.append(
            f"{label:12s} | {100 * result.yield_fraction:4.0f}% | "
            f"{result.percentile('nf_max_db', 95):.3f}          | "
            f"{result.percentile('gt_min_db', 5):.2f}"
        )
    report = "\n".join(lines)
    save_report("extension_yield_vs_tolerance", report)
    print("\n" + report)

    assert outcomes["tight 2%"].yield_fraction >= outcomes[
        "loose 10%"
    ].yield_fraction
    assert outcomes["tight 2%"].yield_fraction > 0.9