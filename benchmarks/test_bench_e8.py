"""Bench E8 (Table IV): the selected design (full optimization budget)."""

from repro.experiments import e8_selected_design as e8


def test_bench_e8_selected_design(benchmark, save_report):
    result = benchmark.pedantic(e8.run, rounds=1, iterations=1)
    report = e8.format_report(result)
    save_report("E8_table4_selected_design", report)
    print("\n" + report)

    design = result.design
    perf = design.snapped_performance
    # The shipped (snapped) board meets the paper-style spec.
    assert perf.nf_max_db < 0.8
    assert perf.gt_min_db > 13.0
    assert perf.mu_min > 1.0
    assert perf.ids < 80e-3
    # Every GNSS band individually in spec.
    for values in design.per_band.values():
        assert values["NF_dB"] < 0.8
        assert values["GT_dB"] > 13.0
