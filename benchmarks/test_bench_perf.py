"""Bench: the batched candidate-evaluation engine vs the scalar loop.

Times a 64-candidate population evaluation three ways — per-candidate
scalar loop, one compiled batched solve, and a worker-fleet spread of
the scalar objective — and writes ``BENCH_eval_engine.json`` with the
timings, throughput, and host context.  Acceptance bars: >= 3x batched
over scalar everywhere, and (on hosts with >= 2 CPUs) the fleet at
least break-even against the scalar loop.
"""

import json
import os
import time

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.experiments.common import reference_device
from repro.optimize.batching import PopulationEvaluator

N_CANDIDATES = 64
_TEMPLATE = None
_GRIDS = None


def _shared_template():
    global _TEMPLATE, _GRIDS
    if _TEMPLATE is None:
        _TEMPLATE = AmplifierTemplate(reference_device().small_signal)
        engine = CompiledTemplate(_TEMPLATE, verify=False)
        _GRIDS = (engine.band_grid, engine.guard_grid)
    return _TEMPLATE, _GRIDS


def _scalar_objective(unit_x):
    """Module-level (hence picklable) scalar NFmax objective."""
    template, (band, guard) = _shared_template()
    perf = template.evaluate(DesignVariables.from_unit(unit_x), band, guard)
    return float(perf.nf_max_db)


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_eval_engine(save_report, report_dir, host_context):
    template, (band, guard) = _shared_template()
    engine = CompiledTemplate(template)
    rng = np.random.default_rng(20150901)
    population = rng.random((N_CANDIDATES, len(DesignVariables.NAMES)))

    # Warm both paths (imports, first-call allocations).
    engine.performance_batch(population[:2])
    _scalar_objective(population[0])

    t_scalar = _best_of(lambda: [
        _scalar_objective(x) for x in population
    ], repeats=2)
    t_batched = _best_of(lambda: engine.performance_batch(population))

    t_pooled = None
    try:
        with PopulationEvaluator(_scalar_objective, workers=2) as pooled:
            pooled(population[:2])  # absorb pool spin-up
            start = time.perf_counter()
            pooled(population)
            t_pooled = time.perf_counter() - start
    except (OSError, RuntimeError):
        pass  # no subprocess support in this environment

    speedup = t_scalar / t_batched
    payload = {
        "n_candidates": N_CANDIDATES,
        "scalar_s": t_scalar,
        "batched_s": t_batched,
        "pooled_s": t_pooled,
        "scalar_candidates_per_s": N_CANDIDATES / t_scalar,
        "batched_candidates_per_s": N_CANDIDATES / t_batched,
        "pooled_candidates_per_s": (
            N_CANDIDATES / t_pooled if t_pooled else None
        ),
        "speedup_batched_vs_scalar": speedup,
        "speedup_pooled_vs_scalar": (
            t_scalar / t_pooled if t_pooled else None
        ),
        "host": host_context(workers=2, backend="fleet"),
    }
    (report_dir / "BENCH_eval_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"population of {N_CANDIDATES} candidates",
        f"scalar loop : {1e3 * t_scalar:8.1f} ms "
        f"({N_CANDIDATES / t_scalar:7.1f} candidates/s)",
        f"batched     : {1e3 * t_batched:8.1f} ms "
        f"({N_CANDIDATES / t_batched:7.1f} candidates/s)  "
        f"speedup {speedup:.1f}x",
    ]
    if t_pooled:
        lines.append(
            f"pooled (2w) : {1e3 * t_pooled:8.1f} ms "
            f"({N_CANDIDATES / t_pooled:7.1f} candidates/s)  "
            f"speedup {t_scalar / t_pooled:.1f}x"
        )
    report = "\n".join(lines)
    save_report("BENCH_eval_engine", report)
    print("\n" + report)

    assert speedup >= 3.0, (
        f"batched evaluation only {speedup:.2f}x faster than the "
        f"scalar loop (needs >= 3x)"
    )
    if t_pooled and (os.cpu_count() or 1) >= 2:
        pooled_speedup = t_scalar / t_pooled
        assert pooled_speedup >= 1.0, (
            f"worker fleet slower than the scalar loop "
            f"({pooled_speedup:.2f}x) on a multi-core host"
        )
