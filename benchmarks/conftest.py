"""Benchmark-suite fixtures: report capture and shared design cache."""

import os
import pathlib
import platform

import numpy as np
import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def host_context():
    """Factory for the ``host`` block of BENCH_*.json artifacts.

    Identifies the machine the numbers came from so cross-machine
    diffs can be read in context; ``repro.obs.compare`` treats every
    ``host.*`` key as informational, never a regression.
    """

    def _context(workers=None, backend=None):
        context = {
            "cpu_count": os.cpu_count(),
            "python_version": platform.python_version(),
            "numpy_version": np.__version__,
        }
        if workers is not None:
            context["workers"] = int(workers)
        if backend is not None:
            context["backend"] = str(backend)
        return context

    return _context


@pytest.fixture(scope="session")
def report_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Write one experiment's rendered report to benchmarks/output/."""

    def _save(experiment_id: str, text: str):
        path = report_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
