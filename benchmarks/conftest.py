"""Benchmark-suite fixtures: report capture and shared design cache."""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Write one experiment's rendered report to benchmarks/output/."""

    def _save(experiment_id: str, text: str):
        path = report_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
