"""Bench E2 (Table II): extraction robustness over repeated trials."""

from repro.experiments import e2_extraction_robustness as e2


def test_bench_e2_extraction_robustness(benchmark, save_report):
    result = benchmark.pedantic(
        e2.run, kwargs={"n_trials": 10}, rounds=1, iterations=1
    )
    report = e2.format_report(result)
    save_report("E2_table2_extraction_robustness", report)
    print("\n" + report)

    rows = {row["method"]: row for row in result.rows}
    three_step = rows["three-step (paper)"]
    local_only = rows["local only"]
    # Reproduction target: the paper's procedure is the most reliable
    # and the most accurate; the naive local fit is neither.
    assert three_step["success_rate"] == 1.0
    assert three_step["success_rate"] >= local_only["success_rate"]
    assert three_step["median_rms"] <= rows["DE only"]["median_rms"]
    assert three_step["worst_rms"] < local_only["worst_rms"]
