"""Bench E5 (Table III): optimizer comparison on the LNA problem."""

from repro.experiments import e5_optimizer_comparison as e5


def test_bench_e5_optimizer_comparison(benchmark, save_report):
    result = benchmark.pedantic(e5.run, rounds=1, iterations=1)
    report = e5.format_report(result)
    save_report("E5_table3_optimizer_comparison", report)
    print("\n" + report)

    rows = {row["method"]: row for row in result.rows}
    improved = rows["improved goal attainment"]
    # The paper's method must deliver a feasible, in-spec design.
    assert improved["feasible"]
    assert improved["nf_max_db"] < 0.8
    assert improved["gt_min_db"] > 14.0
    assert improved["mu_min"] > 1.0
    # And meet its goals (gamma <= 0 means both goals attained).
    assert improved["gamma"] <= 0.05
    # The weighted sum either fails feasibility or lands unbalanced
    # (piling onto one objective) — the known baseline weakness.
    wsum = rows["weighted sum"]
    unbalanced = (
        wsum["nf_max_db"] > improved["nf_max_db"] + 0.2
        or wsum["gt_min_db"] < improved["gt_min_db"] - 2.0
    )
    assert (not wsum["feasible"]) or unbalanced
