"""Micro-benchmarks of the simulation substrate.

These are not paper artifacts but performance baselines: the design
flow calls the MNA solver thousands of times, so regressions here
multiply directly into optimization wall-clock.
"""

import numpy as np

from repro.analysis.acsolver import solve_ac
from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid
from repro.devices.reference import make_reference_device
from repro.optimize.metaheuristics import differential_evolution
from repro.rf import conversions as cv


def test_bench_mna_lna_solve(benchmark):
    """One full LNA S+noise solve over a 25-point band grid."""
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    circuit = template.build_circuit(DesignVariables())
    grid = design_grid(25)

    result = benchmark(solve_ac, circuit, grid)
    assert result.s.shape == (25, 2, 2)


def test_bench_full_design_evaluation(benchmark):
    """One complete figure-of-merit evaluation (band + stability guard)."""
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    variables = DesignVariables()

    perf = benchmark(template.evaluate, variables)
    assert perf.nf_max_db < 1.0


def test_bench_conversion_throughput(benchmark):
    """S->ABCD->S round trip on a 1001-point sweep."""
    rng = np.random.default_rng(0)
    s = 0.4 * (
        rng.standard_normal((1001, 2, 2))
        + 1j * rng.standard_normal((1001, 2, 2))
    )

    def roundtrip():
        return cv.abcd_to_s(cv.s_to_abcd(s))

    out = benchmark(roundtrip)
    np.testing.assert_allclose(out, s, atol=1e-9)


def test_bench_differential_evolution_rastrigin(benchmark):
    """The global stage on a 5-D multimodal test function."""

    def rastrigin(x):
        return float(10 * x.size + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))

    lower = np.full(5, -5.12)
    upper = np.full(5, 5.12)

    result = benchmark.pedantic(
        lambda: differential_evolution(rastrigin, lower, upper, seed=1,
                                       population_size=60,
                                       max_iterations=500),
        rounds=1, iterations=1,
    )
    # Global basin (0) or at worst one off-by-one-period pit (~0.995
    # per dimension); random search would sit near 50.
    assert result.fun < 2.0
