"""Bench: sparse (condensed) vs dense tensor MNA on the paper band.

Times a 64-candidate population through ``CompiledTemplate`` with both
factorization tiers over the fused design+guard grid (17 + 24 points),
plus the Woodbury low-rank path on a bias-only batch, and writes
``BENCH_mna_sparse.json``.  The sparse tier compiles the LNA's stamp
structure into a 13x13 reduced system with two adjoint columns — the
acceptance bar is >= 3x over the dense batched path at equal answers
(<= 1e-9 relative, enforced by the equivalence sweep in
``tests/test_random_circuits.py``).
"""

import json
import time

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.experiments.common import reference_device

N_CANDIDATES = 64
MNA_GATE_SPEEDUP = 3.0


def _best_of(fn, repeats=20):
    """Minimum over many repeats: per-run times on a shared box are
    noisy by 30-50%, and the min is the only statistic that converges
    to the unloaded cost.  20 rounds keep the whole bench under ~2 s."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_mna_sparse(save_report, report_dir, host_context):
    template = AmplifierTemplate(reference_device().small_signal)
    dense = CompiledTemplate(template, solver="dense", verify=False)
    sparse = CompiledTemplate(template, solver="sparse", verify=False)
    rng = np.random.default_rng(20150901)
    population = rng.random((N_CANDIDATES, len(DesignVariables.NAMES)))
    bias_only = np.tile(np.full(len(DesignVariables.NAMES), 0.5),
                        (N_CANDIDATES, 1))
    bias_only[:, 0] = np.linspace(0.25, 0.75, N_CANDIDATES)

    # Warm at full batch width so the batch-sized assembly scratch
    # buffers and allocator pools exist before timing starts.
    for _ in range(3):
        dense.performance_batch(population)
        sparse.performance_batch(population)
    t_dense = _best_of(lambda: dense.performance_batch(population))
    t_sparse = _best_of(lambda: sparse.performance_batch(population))

    sparse.performance_batch(bias_only)
    assert sparse._plan.last_update == "woodbury"
    t_woodbury = _best_of(lambda: sparse.performance_batch(bias_only))

    speedup = t_dense / t_sparse
    payload = {
        "n_candidates": N_CANDIDATES,
        "n_frequencies": int(sparse._f_fused.size),
        "n_reduced": int(sparse._plan.n_reduced),
        "n_nodes": int(sparse._n_nodes),
        "dense_s": t_dense,
        "sparse_s": t_sparse,
        "woodbury_bias_batch_s": t_woodbury,
        "dense_candidates_per_s": N_CANDIDATES / t_dense,
        "sparse_candidates_per_s": N_CANDIDATES / t_sparse,
        "speedup_sparse_vs_dense": speedup,
        "speedup_woodbury_vs_dense": t_dense / t_woodbury,
        "host": host_context(),
    }
    (report_dir / "BENCH_mna_sparse.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report = "\n".join([
        f"{N_CANDIDATES} candidates x {sparse._f_fused.size} frequencies "
        f"({sparse._n_nodes} nodes -> {sparse._plan.n_reduced} reduced)",
        f"dense    : {1e3 * t_dense:7.1f} ms "
        f"({N_CANDIDATES / t_dense:7.1f} candidates/s)",
        f"sparse   : {1e3 * t_sparse:7.1f} ms "
        f"({N_CANDIDATES / t_sparse:7.1f} candidates/s)  "
        f"speedup {speedup:.2f}x",
        f"woodbury : {1e3 * t_woodbury:7.1f} ms "
        f"(bias-only batch)  speedup {t_dense / t_woodbury:.2f}x",
    ])
    save_report("BENCH_mna_sparse", report)
    print("\n" + report)

    assert speedup >= MNA_GATE_SPEEDUP, (
        f"sparse tier only {speedup:.2f}x over dense at "
        f"{N_CANDIDATES} candidates (needs >= {MNA_GATE_SPEEDUP}x)"
    )
