"""Bench E3 (Fig. 1): measured vs fitted output characteristics."""

import numpy as np

from repro.experiments import e3_iv_curves as e3


def test_bench_e3_iv_curves(benchmark, save_report):
    result = benchmark.pedantic(e3.run, rounds=1, iterations=1)
    report = e3.format_report(result)
    save_report("E3_fig1_iv_curves", report)
    print("\n" + report)

    assert result.rms_error_percent < 0.6
    for curve in result.curves:
        worst = np.max(np.abs(curve["measured_ma"] - curve["fitted_ma"]))
        assert worst < 2.0  # mA, across the whole curve family
