"""Bench: indexed fleet analytics and warm-started optimization.

Two gates, two artifacts:

* ``BENCH_analytics.json`` — a 120-run synthetic fleet is summarized
  through the warm :class:`~repro.obs.analytics.RunIndex` path (one
  index read + one ``stat`` per run) and through the per-journal replay
  path (every journal re-parsed end to end).  The acceptance bar is a
  >= 10x speedup for the indexed path; the index's answers must agree
  with replay's exactly first.
* ``BENCH_warmstart.json`` — a cold DE run and a cold NSGA-II run are
  archived (journaling their ``final_population``), then rerun
  warm-started from the archive via
  :func:`~repro.obs.analytics.warm_start_population`.  The warm run
  must reach the cold run's final best within <= 70% of the cold run's
  evaluations.  Every number in the artifact is a deterministic
  evaluation count (fixed seeds, pure-numpy objectives, no timings),
  so CI diffs it against the committed baseline exactly.
"""

import json
import os
import time

import numpy as np

from repro.obs.analytics import (
    FleetView,
    RunIndex,
    index_entry_from_journal,
    warm_start_population,
)
from repro.obs.journal import RunJournal, set_journal
from repro.obs.metrics import Metrics
from repro.obs.telemetry import GenerationRecord
from repro.optimize.metaheuristics import differential_evolution
from repro.optimize.nsga2 import MultiObjectiveProblem, nsga2

N_RUNS = 120
N_GENERATIONS = 150
INDEX_GATE_SPEEDUP = 10.0
WARMSTART_GATE_RATIO = 0.7


def _best_of(fn, repeats=5):
    """Minimum over repeats: the only statistic that converges to the
    unloaded cost on a shared box."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _write_fleet(root, n_runs=N_RUNS, n_generations=N_GENERATIONS):
    """A synthetic fleet: real journal bytes, no optimizer in the loop."""
    for i in range(n_runs):
        run_id = f"synth-{i:04d}"
        run_path = os.path.join(root, run_id)
        os.makedirs(run_path, exist_ok=True)
        journal = RunJournal(os.path.join(run_path, "journal.jsonl"),
                             run_id=run_id)
        journal.run_start(config={"experiment": "synthetic",
                                  "seed": i},
                          seeds={"seed": i})
        for g in range(n_generations):
            best = 10.0 * (0.97 ** g) + 0.01 * (i % 7)
            journal(GenerationRecord(
                algorithm="differential_evolution", generation=g,
                nfev=(g + 1) * 16, best=best, mean=best + 0.5,
                spread=0.1, wall_time_s=0.001))
        journal.run_end(status="completed", metrics=Metrics())
        journal.close()


def test_bench_index_vs_replay(tmp_path, save_report, report_dir,
                               host_context):
    root = str(tmp_path / "fleet")
    _write_fleet(root)
    registry_ids = sorted(os.listdir(root))

    def replay_all():
        return {
            run_id: index_entry_from_journal(
                os.path.join(root, run_id, "journal.jsonl"), run_id)
            for run_id in registry_ids
        }

    index = RunIndex(root)
    index.refresh()  # build once; the warm path is what fleets pay

    def indexed_summary():
        return FleetView(root).summary()

    # Correctness before speed: the indexed entries must be exactly the
    # replayed entries (the index is a cache, never a second truth).
    replayed = replay_all()
    indexed = index.entries(refresh=True)
    assert indexed == replayed
    summary = indexed_summary()
    assert summary["n_runs"] == N_RUNS
    assert summary["by_status"] == {"completed": N_RUNS}

    t_replay = _best_of(replay_all, repeats=3)
    t_indexed = _best_of(indexed_summary, repeats=5)
    speedup = t_replay / t_indexed

    payload = {
        "n_runs": N_RUNS,
        "n_generations": N_GENERATIONS,
        "replay_s": t_replay,
        "indexed_s": t_indexed,
        "replay_runs_per_s": N_RUNS / t_replay,
        "indexed_runs_per_s": N_RUNS / t_indexed,
        "speedup_index_vs_replay": speedup,
        "host": host_context(),
    }
    (report_dir / "BENCH_analytics.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report = "\n".join([
        f"{N_RUNS}-run fleet summary ({N_GENERATIONS} generations each)",
        f"replayed : {1e3 * t_replay:8.1f} ms "
        f"({N_RUNS / t_replay:8.1f} runs/s)",
        f"indexed  : {1e3 * t_indexed:8.1f} ms "
        f"({N_RUNS / t_indexed:8.1f} runs/s)  speedup {speedup:.1f}x",
    ])
    save_report("BENCH_analytics", report)
    print("\n" + report)

    assert speedup >= INDEX_GATE_SPEEDUP, (
        f"indexed fleet summary only {speedup:.1f}x over per-journal "
        f"replay at {N_RUNS} runs (needs >= {INDEX_GATE_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# warm starts
# ----------------------------------------------------------------------

def rosenbrock4(x):
    x = np.asarray(x, dtype=float)
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2
                        + (1.0 - x[:-1]) ** 2))


def _recorded(root, run_id, config, body):
    """Run *body* with an active journal in ``<root>/<run_id>/``."""
    run_path = os.path.join(root, run_id)
    os.makedirs(run_path, exist_ok=True)
    journal = RunJournal(os.path.join(run_path, "journal.jsonl"),
                         run_id=run_id)
    journal.run_start(config=config, seeds={"seed": config.get("seed")})
    previous = set_journal(journal)
    try:
        result = body(journal)
    finally:
        set_journal(previous)
        journal.run_end(status="completed", metrics=Metrics())
        journal.close()
    return result


def _nfev_to_match(records, target):
    """Evaluations until a generation's best first reaches *target*."""
    for record in records:
        if record.best <= target:
            return int(record.nfev)
    return None


def test_bench_warmstart(tmp_path, save_report, report_dir,
                         host_context):
    root = str(tmp_path / "archive")
    lower4, upper4 = [-2.0] * 4, [2.0] * 4
    de_kwargs = dict(population_size=16, max_iterations=60, seed=1)

    cold_config = {"bench": "warmstart-de", "dim": 4, "seed": 1}
    cold_records = []
    cold = _recorded(root, "cold-de", cold_config, lambda journal:
                     differential_evolution(
                         rosenbrock4, lower4, upper4,
                         on_generation=cold_records.append,
                         **de_kwargs))

    warm_config = {"bench": "warmstart-de", "dim": 4, "seed": 2}
    seeds = warm_start_population(warm_config, root,
                                  algorithm="differential_evolution",
                                  population_size=16)
    assert seeds is not None and seeds.shape == (16, 4)
    warm_records = []
    warm_kwargs = dict(de_kwargs, seed=2)
    differential_evolution(rosenbrock4, lower4, upper4,
                           initial_population=seeds,
                           on_generation=warm_records.append,
                           **warm_kwargs)
    de_match = _nfev_to_match(warm_records, cold.fun)
    assert de_match is not None, "warm DE never reached the cold best"
    de_ratio = de_match / cold.nfev

    # NSGA-II over a biobjective bowl pair; best == min first objective.
    problem = MultiObjectiveProblem(
        objectives=lambda x: np.array([
            float(np.sum((x - 0.5) ** 2)),
            float(np.sum((x + 0.5) ** 2)),
        ]),
        n_objectives=2,
        lower=np.array([-1.0, -1.0, -1.0]),
        upper=np.array([1.0, 1.0, 1.0]),
    )
    nsga_kwargs = dict(population_size=16, n_generations=25, seed=1)
    cold_nsga_records = []
    cold_nsga = _recorded(
        root, "cold-nsga2", {"bench": "warmstart-nsga2", "seed": 1},
        lambda journal: nsga2(problem,
                              on_generation=cold_nsga_records.append,
                              **nsga_kwargs))
    cold_nsga_best = min(r.best for r in cold_nsga_records)

    nsga_seeds = warm_start_population(
        {"bench": "warmstart-nsga2", "seed": 2}, root,
        algorithm="nsga2", population_size=16)
    assert nsga_seeds is not None and nsga_seeds.shape[1] == 3
    warm_nsga_records = []
    nsga2(problem, initial_population=nsga_seeds,
          on_generation=warm_nsga_records.append,
          **dict(nsga_kwargs, seed=2))
    nsga_match = _nfev_to_match(warm_nsga_records, cold_nsga_best)
    assert nsga_match is not None, "warm NSGA-II never reached cold best"
    nsga_ratio = nsga_match / cold_nsga.nfev

    payload = {
        "cold_nfev_de": int(cold.nfev),
        "warm_nfev_to_match_de": int(de_match),
        "ratio_warm_vs_cold_de": de_ratio,
        "speedup_warmstart_de": cold.nfev / de_match,
        "cold_nfev_nsga2": int(cold_nsga.nfev),
        "warm_nfev_to_match_nsga2": int(nsga_match),
        "ratio_warm_vs_cold_nsga2": nsga_ratio,
        "speedup_warmstart_nsga2": cold_nsga.nfev / nsga_match,
        "host": host_context(),
    }
    (report_dir / "BENCH_warmstart.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report = "\n".join([
        "warm-started evaluations to reach the cold run's final best",
        f"DE      : cold {cold.nfev:5d} evals, warm matched at "
        f"{de_match:5d} ({100 * de_ratio:.1f}%)",
        f"NSGA-II : cold {cold_nsga.nfev:5d} evals, warm matched at "
        f"{nsga_match:5d} ({100 * nsga_ratio:.1f}%)",
    ])
    save_report("BENCH_warmstart", report)
    print("\n" + report)

    assert de_ratio <= WARMSTART_GATE_RATIO, (
        f"warm DE needed {100 * de_ratio:.0f}% of the cold budget "
        f"(gate: <= {100 * WARMSTART_GATE_RATIO:.0f}%)"
    )
    assert nsga_ratio <= WARMSTART_GATE_RATIO, (
        f"warm NSGA-II needed {100 * nsga_ratio:.0f}% of the cold "
        f"budget (gate: <= {100 * WARMSTART_GATE_RATIO:.0f}%)"
    )
