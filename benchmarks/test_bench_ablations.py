"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Improved goal attainment, stage ablation** — drop the multi-start
   and the goal-tightening stages and measure what each buys on the
   real LNA problem.
2. **Dispersive vs ideal passives** — re-evaluate the selected design
   with ideal (lossless, parasitic-free) L/C elements to quantify how
   much the paper's step 3 (frequency-dependent Q/ESR) changes the
   predicted answer.
"""

import numpy as np

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid
from repro.core.design import DEFAULT_GOALS, DesignFlow
from repro.devices.reference import make_reference_device
from repro.experiments.common import selected_design


def test_bench_ablation_goal_attainment_stages(benchmark, save_report):
    """Improved method vs itself without multi-start / tightening."""
    device = make_reference_device()

    def run_variant(n_starts, tighten_rounds):
        flow = DesignFlow(device.small_signal)
        result = flow.run_improved(goals=DEFAULT_GOALS, seed=11,
                                   n_probe=40, n_starts=n_starts,
                                   tighten_rounds=tighten_rounds)
        return result

    def run_all():
        return {
            "full": run_variant(3, 2),
            "no multistart": run_variant(1, 2),
            "no tightening": run_variant(3, 0),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["ablation of the improved goal-attainment stages",
             "variant          | NFmax  | GTmin  | gamma   | feasible | nfev"]
    for name, result in results.items():
        lines.append(
            f"{name:16s} | {result.objectives[0]:.3f}  | "
            f"{-result.objectives[1]:.2f}  | {result.gamma:+.3f}  | "
            f"{'yes' if result.constraint_violation <= 1e-6 else 'NO ':8s} | "
            f"{result.nfev}"
        )
    report = "\n".join(lines)
    save_report("ablation_goal_attainment_stages", report)
    print("\n" + report)

    # The full method is never worse (in gamma) than either ablation.
    full = results["full"]
    assert full.constraint_violation <= 1e-6
    for name in ("no multistart", "no tightening"):
        variant = results[name]
        if variant.constraint_violation <= 1e-6:
            assert full.gamma <= variant.gamma + 0.02


def _ideal_template_circuit(template, variables):
    """The LNA rebuilt with ideal (lossless) lumped elements."""
    v = variables
    circuit = Circuit("ideal_lna")
    circuit.port("p1", "in", z0=template.z0)
    circuit.port("p2", "out", z0=template.z0)
    template.line_in.add_to(circuit, "in", "n_blk")
    circuit.capacitor("Cin", "n_blk", "n_lin", v.c_in)
    circuit.inductor("Lin", "n_lin", "gate", v.l_in)
    circuit.resistor("Rbias", "gate", "gnd", template.bias_resistance)
    template.device.add_to(circuit, "gate", "drain", "src", v.vgs, v.vds)
    circuit.inductor("Ldeg", "src", "gnd", v.l_deg)
    circuit.inductor("Lchoke", "drain", "n_vdd", v.l_choke)
    circuit.resistor("Rstab", "n_vdd", "n_dec", v.r_stab)
    circuit.capacitor("Cdec", "n_dec", "gnd", 100e-12)
    circuit.capacitor("Cout", "drain", "n_out", v.c_out)
    circuit.resistor("Rsh", "n_out", "n_rc", v.r_sh)
    circuit.capacitor("Csh", "n_rc", "gnd", v.c_sh)
    template.line_out.add_to(circuit, "n_out", "out")
    return circuit


def test_bench_ablation_dispersive_passives(benchmark, save_report):
    """Quantify the error of ignoring passive loss/dispersion."""
    design = selected_design("fast")
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    grid = design_grid(25)

    def run_both():
        real = solve_ac(template.build_circuit(design.snapped), grid)
        ideal = solve_ac(_ideal_template_circuit(template, design.snapped),
                         grid)
        return real, ideal

    real, ideal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    nf_real = real.as_noisy_twoport().noise_figure_db()
    nf_ideal = ideal.as_noisy_twoport().noise_figure_db()
    gt_real = 20 * np.log10(np.abs(real.s[:, 1, 0]))
    gt_ideal = 20 * np.log10(np.abs(ideal.s[:, 1, 0]))

    nf_gap = float(np.max(nf_real - nf_ideal))
    gt_gap = float(np.max(np.abs(gt_real - gt_ideal)))
    report = (
        "dispersive vs ideal passives on the selected design\n"
        f"max NF underestimate of the ideal model: {nf_gap:.3f} dB\n"
        f"max |GT| discrepancy: {gt_gap:.3f} dB\n"
        "The paper's step 3 exists because these gaps are design-"
        "relevant for a sub-1 dB NF target."
    )
    save_report("ablation_dispersive_passives", report)
    print("\n" + report)

    # The ideal model must be optimistic on noise by a visible margin
    # (a meaningful fraction of the total NF budget).
    assert nf_gap > 0.02
    assert gt_gap > 0.1
