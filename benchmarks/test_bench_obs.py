"""Bench: observability overhead on the batched evaluation path.

``CompiledTemplate.performance_batch_isolated`` is a thin instrumented
wrapper (span + counters) around the uninstrumented ``_batch_isolated``
body, so the two give a direct A/B measurement of what the
observability layer costs when tracing is disabled — the tentpole
contract is < 3% on a 64-candidate batched evaluation.  The enabled
cost is reported alongside for context (it has no acceptance bar).

Wall-clock ratios at millisecond scale are noisy; the measurement
interleaves A/B samples, takes best-of-N, and retries with more
repeats before judging, so a scheduler hiccup cannot fail the suite.
"""

import json
import time

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.experiments.common import reference_device
from repro.obs import Tracer, set_tracer
from repro.obs.journal import RunJournal, set_journal
from repro.obs.telemetry import GenerationRecord

N_CANDIDATES = 64
MAX_DISABLED_OVERHEAD = 0.03
MAX_ENABLED_JOURNAL_OVERHEAD = 0.05


def _interleaved_best(fn_a, fn_b, repeats):
    """Best-of-N with A/B samples interleaved (shared thermal drift)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_bench_disabled_tracing_overhead(save_report, report_dir):
    template = AmplifierTemplate(reference_device().small_signal)
    engine = CompiledTemplate(template, verify=False)
    rng = np.random.default_rng(20150901)
    population = rng.random((N_CANDIDATES, len(DesignVariables.NAMES)))

    def bare():
        engine._batch_isolated(population)

    def instrumented():
        engine.performance_batch_isolated(population)

    old_tracer = set_tracer(Tracer(enabled=False))
    try:
        bare()
        instrumented()  # warm both paths
        overhead = float("inf")
        for attempt in range(4):
            t_bare, t_instrumented = _interleaved_best(
                bare, instrumented, repeats=5 + 5 * attempt
            )
            overhead = t_instrumented / t_bare - 1.0
            if overhead < MAX_DISABLED_OVERHEAD:
                break

        # Context: what switching tracing ON costs on the same batch.
        enabled_tracer = Tracer(enabled=True)
        set_tracer(enabled_tracer)
        instrumented()
        enabled_tracer.clear()
        t_enabled, _ = _interleaved_best(instrumented, enabled_tracer.clear,
                                         repeats=5)
    finally:
        set_tracer(old_tracer)
    enabled_cost = t_enabled / t_bare - 1.0

    payload = {
        "n_candidates": N_CANDIDATES,
        "bare_s": t_bare,
        "disabled_s": t_instrumented,
        "enabled_s": t_enabled,
        "disabled_overhead": overhead,
        "enabled_overhead": enabled_cost,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    (report_dir / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report = "\n".join([
        f"population of {N_CANDIDATES} candidates (batched engine)",
        f"uninstrumented body : {1e3 * t_bare:8.2f} ms",
        f"tracing disabled    : {1e3 * t_instrumented:8.2f} ms "
        f"({100 * overhead:+.2f}%, bar < "
        f"{100 * MAX_DISABLED_OVERHEAD:.0f}%)",
        f"tracing enabled     : {1e3 * t_enabled:8.2f} ms "
        f"({100 * enabled_cost:+.2f}%)",
    ])
    save_report("BENCH_obs_overhead", report)
    print("\n" + report)

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {100 * overhead:.2f}% on the batched "
        f"evaluation (bar: < {100 * MAX_DISABLED_OVERHEAD:.0f}%)"
    )


def test_bench_journal_overhead(save_report, report_dir, tmp_path):
    """Flight-recorder cost per generation of the batched evaluator.

    One journaled "generation" = one 64-candidate batch evaluation plus
    one JSONL generation append (buffered; fsync amortized across 16
    events).  The bar is < 5% over the unjournaled generation; with no
    journal installed, the ambient :func:`repro.obs.journal.emit` hook
    must stay within the 3% disabled budget.
    """
    template = AmplifierTemplate(reference_device().small_signal)
    engine = CompiledTemplate(template, verify=False)
    rng = np.random.default_rng(20150901)
    population = rng.random((N_CANDIDATES, len(DesignVariables.NAMES)))
    record = GenerationRecord(
        algorithm="bench", generation=0, nfev=N_CANDIDATES,
        best=1.0, mean=2.0, spread=0.5, wall_time_s=1e-3,
    )

    journal = RunJournal(str(tmp_path / "journal.jsonl"), run_id="bench")

    def plain_generation():
        engine.performance_batch_isolated(population)

    def journaled_generation():
        engine.performance_batch_isolated(population)
        journal(record)

    old_journal = set_journal(None)
    old_tracer = set_tracer(Tracer(enabled=False))
    try:
        plain_generation()
        journaled_generation()  # warm both paths
        enabled_overhead = float("inf")
        for attempt in range(4):
            t_plain, t_journaled = _interleaved_best(
                plain_generation, journaled_generation,
                repeats=5 + 5 * attempt,
            )
            enabled_overhead = t_journaled / t_plain - 1.0
            if enabled_overhead < MAX_ENABLED_JOURNAL_OVERHEAD:
                break
    finally:
        set_tracer(old_tracer)
        set_journal(old_journal)
        journal.close()

    payload = {
        "n_candidates": N_CANDIDATES,
        "plain_s": t_plain,
        "journaled_s": t_journaled,
        "enabled_overhead": enabled_overhead,
        "max_enabled_overhead": MAX_ENABLED_JOURNAL_OVERHEAD,
    }
    (report_dir / "BENCH_journal_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report = "\n".join([
        f"one generation = {N_CANDIDATES}-candidate batch evaluation",
        f"no journal          : {1e3 * t_plain:8.2f} ms",
        f"journal enabled     : {1e3 * t_journaled:8.2f} ms "
        f"({100 * enabled_overhead:+.2f}%, bar < "
        f"{100 * MAX_ENABLED_JOURNAL_OVERHEAD:.0f}%)",
    ])
    save_report("BENCH_journal_overhead", report)
    print("\n" + report)

    assert enabled_overhead < MAX_ENABLED_JOURNAL_OVERHEAD, (
        f"journaling costs {100 * enabled_overhead:.2f}% per generation "
        f"(bar: < {100 * MAX_ENABLED_JOURNAL_OVERHEAD:.0f}%)"
    )
