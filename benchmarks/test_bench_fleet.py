"""Bench: the persistent worker fleet at population scale.

Times a 256-candidate population through the three population
backends — the in-process compiled batch, thread-sharded batch shards,
and the shared-memory worker fleet (workers rebuild the compiled
objective once via ``objective_factory``; candidates and fitness cross
process boundaries through preallocated float64 buffers, never
pickle) — and writes ``BENCH_parallel_fleet.json`` with wall times,
throughput, speedups, and the host context the numbers came from.

The acceptance bar (fleet >= 2x over the in-process batch) only arms
on hosts with >= 4 CPUs; smaller machines still write the artifact so
CI's regression diff has a candidate to compare.
"""

import json
import os
import time

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledMetricObjective
from repro.experiments.common import reference_device
from repro.optimize.batching import PopulationEvaluator, default_workers

N_CANDIDATES = 256
FLEET_GATE_MIN_CPUS = 4
FLEET_GATE_SPEEDUP = 2.0


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_parallel_fleet(save_report, report_dir, host_context):
    template = AmplifierTemplate(reference_device().small_signal)
    factory = CompiledMetricObjective(template)
    objective, objective_batch = factory()
    rng = np.random.default_rng(20150901)
    population = rng.random((N_CANDIDATES, len(DesignVariables.NAMES)))
    # At least two workers even on one CPU: the artifact then always
    # carries real fleet numbers (the >= 2x gate still only arms on
    # hosts with enough CPUs to honestly meet it).
    workers = max(2, min(default_workers(), 8))

    with PopulationEvaluator(objective, objective_batch=objective_batch,
                             backend="batch") as batched:
        batched(population[:8])  # warm allocations
        t_batched = _best_of(lambda: batched(population))

    with PopulationEvaluator(objective, objective_batch=objective_batch,
                             backend="thread", workers=workers) as threaded:
        threaded(population[:8])
        t_thread = _best_of(lambda: threaded(population))

    t_fleet = warmup_s = None
    try:
        with PopulationEvaluator(objective, objective_batch=objective_batch,
                                 objective_factory=factory,
                                 backend="fleet", workers=workers,
                                 fleet_capacity=N_CANDIDATES) as fleet:
            fleet(population[:8])  # spawn + warm the fleet
            warmup_s = fleet._fleet.warmup_s if fleet._fleet else None
            t_fleet = _best_of(lambda: fleet(population))
            assert not fleet.health.serial_fallback
    except (OSError, RuntimeError):
        pass  # no subprocess support in this environment

    payload = {
        "n_candidates": N_CANDIDATES,
        "batched_s": t_batched,
        "thread_s": t_thread,
        "fleet_s": t_fleet,
        "fleet_warmup_s": warmup_s,
        "batched_candidates_per_s": N_CANDIDATES / t_batched,
        "thread_candidates_per_s": N_CANDIDATES / t_thread,
        "fleet_candidates_per_s": (
            N_CANDIDATES / t_fleet if t_fleet else None
        ),
        "speedup_thread_vs_batched": t_batched / t_thread,
        "speedup_fleet_vs_batched": (
            t_batched / t_fleet if t_fleet else None
        ),
        "host": host_context(workers=workers, backend="fleet"),
    }
    (report_dir / "BENCH_parallel_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"population of {N_CANDIDATES} candidates, {workers} workers",
        f"batched     : {1e3 * t_batched:8.1f} ms "
        f"({N_CANDIDATES / t_batched:7.1f} candidates/s)",
        f"thread      : {1e3 * t_thread:8.1f} ms "
        f"({N_CANDIDATES / t_thread:7.1f} candidates/s)  "
        f"speedup {t_batched / t_thread:.2f}x",
    ]
    if t_fleet:
        lines.append(
            f"fleet       : {1e3 * t_fleet:8.1f} ms "
            f"({N_CANDIDATES / t_fleet:7.1f} candidates/s)  "
            f"speedup {t_batched / t_fleet:.2f}x "
            f"(warm-up {warmup_s or 0.0:.2f} s, paid once)"
        )
    report = "\n".join(lines)
    save_report("BENCH_parallel_fleet", report)
    print("\n" + report)

    cpus = os.cpu_count() or 1
    if t_fleet and cpus >= FLEET_GATE_MIN_CPUS:
        fleet_speedup = t_batched / t_fleet
        assert fleet_speedup >= FLEET_GATE_SPEEDUP, (
            f"fleet only {fleet_speedup:.2f}x over the in-process batch "
            f"at {N_CANDIDATES} candidates on {cpus} CPUs "
            f"(needs >= {FLEET_GATE_SPEEDUP}x)"
        )
