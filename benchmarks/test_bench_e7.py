"""Bench E7 (Fig. 4): passive-element frequency dispersion."""

import numpy as np

from repro.experiments import e7_passive_dispersion as e7


def test_bench_e7_passive_dispersion(benchmark, save_report):
    result = benchmark.pedantic(e7.run, rounds=1, iterations=1)
    report = e7.format_report(result)
    save_report("E7_fig4_passive_dispersion", report)
    print("\n" + report)

    # Inductor Q peaks inside the sweep and collapses at the SRF.
    peak = int(np.argmax(result.inductor_q))
    assert 0 < peak < len(result.inductor_q) - 1
    assert result.inductor_q[-1] < 0.5 * result.inductor_q[peak]
    # Capacitor ESR is not constant (dispersion is real).
    assert result.capacitor_esr.max() > 2.0 * result.capacitor_esr.min()
    # Microstrip eps_eff rises with frequency; loss grows monotonically.
    assert np.all(np.diff(result.eps_eff) >= -1e-9)
    assert np.all(np.diff(result.line_loss_db_per_m) > 0)
