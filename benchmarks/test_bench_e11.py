"""Bench E11 (Table V): two-tone third-order intermodulation."""

import pytest

from repro.experiments import e11_intermodulation as e11


def test_bench_e11_intermodulation(benchmark, save_report):
    result = benchmark.pedantic(e11.run, rounds=1, iterations=1)
    report = e11.format_report(result)
    save_report("E11_table5_intermodulation", report)
    print("\n" + report)

    for two_tone in result.results:
        # Classic 3:1 IM3 slope and consistent intercepts.
        assert two_tone.im3_slope() == pytest.approx(3.0, abs=1e-6)
        assert two_tone.oip3_dbm == pytest.approx(
            two_tone.iip3_dbm + two_tone.gt_db, abs=1e-9
        )
        # Intercept comfortably above GNSS signal levels.
        assert two_tone.oip3_dbm > 15.0
