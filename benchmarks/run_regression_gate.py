"""Seeded mini goal-attainment run for the CI regression gate.

Runs the paper's improved goal-attainment flow on the reference device
with a small, fixed budget and a fixed seed, journaled into
``runs/regression-gate/``.  CI then diffs the fresh journal against the
committed baseline::

    python benchmarks/run_regression_gate.py
    python -m repro.obs compare \
        benchmarks/baselines/goal_attainment_mini.jsonl \
        runs/regression-gate/journal.jsonl \
        --tol final_best=rel:0.05 --tol convergence=rel:0.05 \
        --tol total_nfev=rel:0.25

The loosened tolerances absorb cross-machine floating-point variance
(BLAS kernels, FMA contraction); the zero-tolerance failure and guard
counters are kept as-is — a gate run must stay failure-free.

``--write-baseline`` refreshes the committed baseline from the run it
just performed (use after an intentional algorithm change, and say so
in the commit message).
"""

import argparse
import os
import shutil
import sys

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines", "goal_attainment_mini.jsonl",
)

GATE_RUN_ID = "regression-gate"
GATE_SEED = 11
GATE_BUDGET = dict(n_probe=16, n_starts=2, tighten_rounds=1)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="seeded mini goal-attainment run for regression gating")
    parser.add_argument("--runs-root", default="runs",
                        help="runs root directory (default: runs)")
    parser.add_argument("--run-id", default=GATE_RUN_ID,
                        help=f"run id (default: {GATE_RUN_ID})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="copy the fresh journal over the committed "
                             "baseline")
    args = parser.parse_args(argv)

    from repro.core.design import DesignFlow
    from repro.experiments.common import reference_device
    from repro.obs.compare import summarize_journal
    from repro.obs.runs import RunRegistry, recorded_run

    registry = RunRegistry(args.runs_root)
    run_path = os.path.join(registry.root, args.run_id)
    if os.path.isdir(run_path):
        # A leftover journal/checkpoint would resume instead of rerun.
        shutil.rmtree(run_path)

    with recorded_run(registry, run_id=args.run_id,
                      config={"gate": "goal_attainment_mini",
                              "seed": GATE_SEED, **GATE_BUDGET},
                      seeds={"seed": GATE_SEED}) as run:
        flow = DesignFlow(reference_device().small_signal)
        result = flow.run_improved(seed=GATE_SEED, **GATE_BUDGET,
                                   on_generation=run.journal)

    summary = summarize_journal(run.journal_path)
    print(f"run {run.run_id}: gamma={result.gamma:+.4f} "
          f"nfev={result.nfev} generations={summary.n_generations} "
          f"failures={summary.n_failures:g}")
    print(f"journal: {run.journal_path}")

    if args.write_baseline:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        shutil.copyfile(run.journal_path, BASELINE_PATH)
        print(f"baseline refreshed: {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
