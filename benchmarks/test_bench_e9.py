"""Bench E9 (Fig. 5): designed vs measured preamplifier S-parameters."""

import numpy as np

from repro.experiments import e9_measured_sparams as e9


def test_bench_e9_measured_sparams(benchmark, save_report):
    result = benchmark.pedantic(e9.run, rounds=1, iterations=1)
    report = e9.format_report(result)
    save_report("E9_fig5_measured_sparams", report)
    print("\n" + report)

    measurement = result.measurement
    # Measurement rides on the design within instrument uncertainty.
    assert result.worst_s21_deviation_db < 0.5
    # In-band (1.1-1.7 GHz) gain and matching of the measured board.
    in_band = (measurement.frequency.f_hz >= 1.1e9) & (
        measurement.frequency.f_hz <= 1.7e9
    )
    s21_db = measurement.sparam_db(2, 1)[in_band]
    s11_db = measurement.sparam_db(1, 1)[in_band]
    assert np.min(s21_db) > 13.0
    assert np.max(s11_db) < -8.0
