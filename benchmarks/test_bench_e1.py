"""Bench E1 (Table I): pHEMT model-comparison extraction."""

from repro.experiments import e1_model_comparison as e1


def test_bench_e1_model_comparison(benchmark, save_report):
    result = benchmark.pedantic(e1.run, rounds=1, iterations=1)
    report = e1.format_report(result)
    save_report("E1_table1_model_comparison", report)
    print("\n" + report)

    by_model = {row["model"]: row["rms_iv_percent"] for row in result.rows}
    # Reproduction target: Angelov best, plain square law worst.
    assert by_model["angelov"] < by_model["statz"] < by_model["curtice2"]
    assert by_model["angelov"] < 0.6
