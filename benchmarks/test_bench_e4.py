"""Bench E4 (Fig. 2): measured vs modelled S-parameters."""

import numpy as np

from repro.experiments import e4_sparam_fit as e4


def test_bench_e4_sparam_fit(benchmark, save_report):
    result = benchmark.pedantic(e4.run, rounds=1, iterations=1)
    report = e4.format_report(result)
    save_report("E4_fig2_sparam_fit", report)
    print("\n" + report)

    assert result.extraction.rms_error < 0.03
    # gm and Cgs recovered within a few percent of the golden values.
    assert abs(result.extraction.intrinsic.gm - result.gm_true) < (
        0.05 * result.gm_true
    )
    assert abs(result.extraction.intrinsic.cgs - result.cgs_true) < (
        0.10 * result.cgs_true
    )
    # Modelled S21 tracks the measurement across the sweep.
    s21_err_db = np.abs(
        20 * np.log10(np.abs(result.s_modelled[:, 1, 0]))
        - 20 * np.log10(np.abs(result.s_measured[:, 1, 0]))
    )
    assert np.max(s21_err_db) < 0.5
