"""Bench E10 (Fig. 6): designed vs measured noise figure."""

import numpy as np

from repro.experiments import e10_measured_nf as e10


def test_bench_e10_measured_nf(benchmark, save_report):
    result = benchmark.pedantic(e10.run, rounds=1, iterations=1)
    report = e10.format_report(result)
    save_report("E10_fig6_measured_nf", report)
    print("\n" + report)

    # Sub-dB noise figure across the whole GNSS band, designed and
    # measured, with the measurement scattered around the design.
    assert result.nf_designed_max_db < 0.8
    assert result.nf_measured_max_db < 1.0
    deviation = np.abs(
        result.measurement.nf_measured_db
        - result.measurement.nf_designed_db
    )
    assert np.max(deviation) < 0.4
