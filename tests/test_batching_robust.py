"""Worker-fleet hardening in :class:`PopulationEvaluator`.

Worker crashes, hangs, and batch-objective errors must cost penalty
fitness and a health counter tick, never the run: a crashed fleet is
rebuilt with backoff (fresh processes *and* fresh shared-memory
segments), a hung generation times out with ``+inf`` rows, and after
``max_pool_rebuilds`` the evaluator falls back to the in-process loop
for good.
"""

import multiprocessing
import os
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.optimize import PopulationEvaluator, validate_workers
from repro.optimize.faults import (
    CATEGORY_EXCEPTION,
    CATEGORY_NON_FINITE,
    CATEGORY_TIMEOUT,
    RunHealth,
)


# Worker objectives must be module-level functions so they pickle.

def _sphere(x):
    return float(np.sum(np.asarray(x) ** 2))


def _crash_in_worker(x):
    # Only die inside a pool worker; the serial fallback path calls
    # the same objective from the parent and must succeed.
    if multiprocessing.parent_process() is not None:
        os._exit(17)
    return _sphere(x)


def _hang_in_worker(x):
    if multiprocessing.parent_process() is not None and x[0] > 0.5:
        time.sleep(30.0)
    return _sphere(x)


def _raise_for_negative(x):
    if x[0] < 0:
        raise RuntimeError("bad candidate")
    return _sphere(x)


def _nan_for_negative(x):
    if x[0] < 0:
        return float("nan")
    return _sphere(x)


# ----------------------------------------------------------------------
# validate_workers
# ----------------------------------------------------------------------

def test_validate_workers_accepts_none_and_positive_ints():
    assert validate_workers(None) is None
    assert validate_workers(1) == 1
    assert validate_workers(np.int64(4)) == 4


@pytest.mark.parametrize("bad", [True, False, 2.0, "3", [2]])
def test_validate_workers_rejects_non_integers(bad):
    with pytest.raises(TypeError):
        validate_workers(bad)


@pytest.mark.parametrize("bad", [0, -1, -100])
def test_validate_workers_rejects_non_positive(bad):
    with pytest.raises(ValueError):
        validate_workers(bad)


def test_evaluator_validates_generation_timeout():
    with pytest.raises(ValueError):
        PopulationEvaluator(_sphere, generation_timeout=0.0)


# ----------------------------------------------------------------------
# serial and batch paths
# ----------------------------------------------------------------------

def test_serial_path_isolates_raising_and_nan_candidates():
    evaluator = PopulationEvaluator(_raise_for_negative)
    pop = np.array([[1.0, 1.0], [-1.0, 0.0], [2.0, 0.0]])
    values = evaluator(pop)
    assert values.tolist() == [2.0, np.inf, 4.0]
    assert evaluator.health.failures == {CATEGORY_EXCEPTION: 1}


def test_batch_exception_falls_back_to_serial_and_counts_retry():
    def bad_batch(pop):
        raise np.linalg.LinAlgError("Singular matrix")

    evaluator = PopulationEvaluator(_sphere, objective_batch=bad_batch)
    values = evaluator(np.array([[1.0, 0.0], [2.0, 0.0]]))
    assert values.tolist() == [1.0, 4.0]
    assert evaluator.health.retries == 1
    assert evaluator.health.n_failures == 0


def test_batch_non_finite_rows_become_inf():
    def nan_batch(pop):
        values = np.sum(pop ** 2, axis=1)
        values[1] = np.nan
        return values

    evaluator = PopulationEvaluator(_sphere, objective_batch=nan_batch)
    values = evaluator(np.ones((3, 2)))
    assert values[1] == np.inf
    assert evaluator.health.failures == {CATEGORY_NON_FINITE: 1}


def test_batch_wrong_length_is_a_programming_error():
    evaluator = PopulationEvaluator(
        _sphere, objective_batch=lambda pop: np.zeros(5)
    )
    with pytest.raises(ValueError):
        evaluator(np.ones((3, 2)))


# ----------------------------------------------------------------------
# worker-fleet degradation
# ----------------------------------------------------------------------

def _segments_unlinked(names):
    """True when every named shared-memory segment is gone."""
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        return False
    return True


def test_pool_evaluates_and_closes_cleanly():
    with PopulationEvaluator(_sphere, workers=2) as evaluator:
        values = evaluator(np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 3.0]]))
        assert values.tolist() == [1.0, 4.0, 9.0]
        names = evaluator._fleet.segment_names
        assert names  # shared-memory path actually engaged
    assert evaluator._fleet is None  # closed by the context manager
    assert _segments_unlinked(names)


def test_pool_isolates_worker_exceptions_and_nans():
    with PopulationEvaluator(_raise_for_negative, workers=2) as evaluator:
        values = evaluator(np.array([[1.0, 0.0], [-1.0, 0.0]]))
        assert values.tolist() == [1.0, np.inf]
        assert evaluator.health.failures == {CATEGORY_EXCEPTION: 1}
    with PopulationEvaluator(_nan_for_negative, workers=2) as evaluator:
        values = evaluator(np.array([[1.0, 0.0], [-1.0, 0.0]]))
        assert values.tolist() == [1.0, np.inf]
        assert evaluator.health.failures == {CATEGORY_NON_FINITE: 1}


def test_broken_pool_rebuilds_then_falls_back_to_serial():
    with PopulationEvaluator(_crash_in_worker, workers=2,
                             max_pool_rebuilds=1,
                             backoff_base=0.01) as evaluator:
        pop = np.array([[1.0, 0.0], [2.0, 0.0]])
        values = evaluator(pop)
        # Workers kept dying, so the answer came from the serial loop.
        assert values.tolist() == [1.0, 4.0]
        assert evaluator.health.pool_rebuilds == 1
        assert evaluator.health.serial_fallback
        assert evaluator._fleet is None
        # Later generations go straight to the serial loop.
        assert evaluator(pop).tolist() == [1.0, 4.0]


def test_generation_timeout_penalizes_hung_candidates():
    with PopulationEvaluator(_hang_in_worker, workers=2,
                             generation_timeout=0.5,
                             max_pool_rebuilds=1,
                             backoff_base=0.01) as evaluator:
        pop = np.array([[0.0, 1.0], [1.0, 1.0]])
        values = evaluator(pop)
        assert values[0] == 1.0
        assert values[1] == np.inf
        assert evaluator.health.failures.get(CATEGORY_TIMEOUT, 0) >= 1
        assert evaluator.health.pool_rebuilds >= 1


def test_del_reclaims_fleet_without_close():
    evaluator = PopulationEvaluator(_sphere, workers=2)
    evaluator(np.array([[1.0, 0.0], [2.0, 0.0]]))  # spawn the fleet
    fleet = evaluator._fleet
    assert fleet is not None
    names = fleet.segment_names
    processes = list(fleet._processes)
    assert names and processes
    evaluator.__del__()
    assert evaluator._fleet is None
    # The workers are genuinely gone and the segments unlinked, not
    # leaked into /dev/shm.
    for process in processes:
        process.join(timeout=5.0)
        assert not process.is_alive()
    assert _segments_unlinked(names)


def test_del_is_safe_when_init_raised_early():
    # __init__ raises on validation before any worker state exists;
    # __del__ must still run without AttributeError at teardown.
    with pytest.raises(TypeError):
        PopulationEvaluator(_sphere, workers=2.5)
    evaluator = PopulationEvaluator.__new__(PopulationEvaluator)
    evaluator.__del__()  # half-constructed: no attributes at all


def test_close_is_idempotent():
    evaluator = PopulationEvaluator(_sphere, workers=2)
    evaluator(np.array([[1.0, 0.0]]))
    evaluator.close()
    evaluator.close()
    evaluator.__del__()
    # A closed evaluator keeps answering, in-process.
    assert evaluator(np.array([[3.0, 0.0]])).tolist() == [9.0]


def test_shared_health_accumulates_across_evaluators():
    health = RunHealth()
    PopulationEvaluator(_raise_for_negative, health=health)(
        np.array([[-1.0, 0.0]])
    )
    PopulationEvaluator(_nan_for_negative, health=health)(
        np.array([[-1.0, 0.0]])
    )
    assert health.failures == {
        CATEGORY_EXCEPTION: 1,
        CATEGORY_NON_FINITE: 1,
    }
