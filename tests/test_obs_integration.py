"""Observability wired through the optimization runtime.

Three integration contracts:

* every population optimizer emits a contiguous per-generation
  telemetry trace, and the trace survives a kill/resume cycle
  identically to an uninterrupted run (wall clock excepted);
* RunHealth/metrics counters agree between the serial, process-pool,
  and serial-fallback evaluation paths — in particular a pool rebuild
  mid-generation must not double count the failures already collected;
* a traced ``goal_attainment_improved`` run produces a well-formed
  span tree (the tier-1 smoke test backing the CI artifact job).
"""

import functools
import multiprocessing
import os

import numpy as np
import pytest

from repro.obs import Metrics, TelemetryRecorder, Tracer, set_tracer
from repro.optimize import (
    FaultInjector,
    MemoryCheckpointStore,
    differential_evolution,
    nsga2,
    particle_swarm,
)
from repro.optimize.batching import PopulationEvaluator
from repro.optimize.faults import CATEGORY_SINGULAR
from repro.optimize.goal_attainment import (
    MultiObjectiveProblem,
    goal_attainment_improved,
)


def rosenbrock(x):
    x = np.asarray(x, dtype=float)
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2
                        + (1.0 - x[:-1]) ** 2))


def _biobjective(x):
    x = np.asarray(x, dtype=float)
    return np.array([float(np.sum(x ** 2)),
                     float(np.sum((x - 1.0) ** 2))])


def _problem(fn=_biobjective):
    return MultiObjectiveProblem(
        objectives=fn, n_objectives=2,
        lower=np.zeros(2), upper=np.ones(2),
    )


class KillAfter:
    """Objective wrapper that interrupts the run after n calls."""

    def __init__(self, objective, n_calls):
        self._objective = objective
        self._remaining = int(n_calls)

    def __call__(self, x):
        self._remaining -= 1
        if self._remaining < 0:
            raise KeyboardInterrupt("simulated kill")
        return self._objective(x)


def _trace_key(recorder):
    """The telemetry trace minus wall-clock (which legitimately varies)."""
    return [
        (r.algorithm, r.generation, r.nfev, r.best, r.mean, r.spread,
         r.n_failures, tuple(sorted(r.extra.items())))
        for r in recorder.records
    ]


# ----------------------------------------------------------------------
# per-generation telemetry
# ----------------------------------------------------------------------

class TestOptimizerTelemetry:
    def test_de_emits_contiguous_trace(self):
        recorder = TelemetryRecorder()
        result = differential_evolution(
            rosenbrock, -2 * np.ones(2), 2 * np.ones(2),
            population_size=10, max_iterations=15, seed=11,
            on_generation=recorder,
        )
        assert recorder.is_contiguous()
        assert recorder.generations()[0] == 0
        # One record per completed generation, plus the init record.
        assert len(recorder) == result.n_iterations + 1
        # DE is elitist: the per-generation best never regresses.
        bests = [r.best for r in recorder.records]
        assert all(b <= a + 1e-12 for a, b in zip(bests, bests[1:]))
        assert recorder.records[-1].best == pytest.approx(result.fun)
        nfevs = [r.nfev for r in recorder.records]
        assert nfevs == sorted(nfevs)
        assert nfevs[-1] == result.nfev
        assert all(r.wall_time_s >= 0.0 for r in recorder.records)

    def test_pso_emits_contiguous_trace(self):
        recorder = TelemetryRecorder()
        result = particle_swarm(
            rosenbrock, -2 * np.ones(2), 2 * np.ones(2),
            n_particles=8, max_iterations=12, seed=7,
            on_generation=recorder,
        )
        assert recorder.is_contiguous()
        assert len(recorder) == result.n_iterations + 1
        assert recorder.records[0].algorithm == "particle_swarm"

    def test_nsga2_emits_contiguous_trace_with_front_stats(self):
        recorder = TelemetryRecorder()
        result = nsga2(_problem(), population_size=12, n_generations=8,
                       seed=3, on_generation=recorder)
        assert recorder.is_contiguous()
        assert len(recorder) == 9  # generation 0 through 8
        last = recorder.records[-1]
        assert set(last.extra) >= {"min_f0", "min_f1", "n_feasible"}
        assert last.extra["min_f0"] == pytest.approx(
            float(np.min(result.objectives[:, 0]))
        )
        assert last.extra["n_feasible"] == result.objectives.shape[0]
        assert last.violation == 0.0  # unconstrained problem

    def test_goal_attainment_emits_staged_trace(self):
        recorder = TelemetryRecorder()
        result = goal_attainment_improved(
            _problem(), goals=np.array([0.3, 0.3]), n_probe=16,
            n_starts=3, tighten_rounds=1, seed=9,
            on_generation=recorder,
        )
        assert recorder.is_contiguous()
        stages = [r.extra["stage"] for r in recorder.records]
        assert stages[0] == "probe"
        assert stages[1:4] == ["nlp_start"] * 3
        assert set(stages) <= {"probe", "nlp_start", "tighten"}
        assert recorder.records[-1].nfev == result.nfev

    def test_de_telemetry_survives_kill_and_resume(self):
        kwargs = dict(lower=-2 * np.ones(2), upper=2 * np.ones(2),
                      population_size=10, max_iterations=20, seed=17)
        clean = TelemetryRecorder()
        differential_evolution(rosenbrock, on_generation=clean, **kwargs)

        store = MemoryCheckpointStore()
        resumed = TelemetryRecorder()
        killer = KillAfter(rosenbrock, 10 + 10 * 8 + 3)
        with pytest.raises(KeyboardInterrupt):
            differential_evolution(killer, checkpoint_store=store,
                                   checkpoint_every=3,
                                   on_generation=resumed, **kwargs)
        # The interrupted run emitted generations past the last
        # checkpoint; the resume must drop and re-emit them so the
        # final trace has no gap and no duplicate.
        differential_evolution(rosenbrock, checkpoint_store=store,
                               checkpoint_every=3,
                               on_generation=resumed, **kwargs)
        assert resumed.is_contiguous()
        assert _trace_key(resumed) == _trace_key(clean)

    def test_goal_attainment_telemetry_survives_kill_and_resume(self):
        kwargs = dict(goals=np.array([0.3, 0.3]), n_probe=16,
                      n_starts=3, tighten_rounds=1, seed=9)
        clean = TelemetryRecorder()
        goal_attainment_improved(_problem(), on_generation=clean,
                                 **kwargs)

        store = MemoryCheckpointStore()
        resumed = TelemetryRecorder()
        killer = KillAfter(_biobjective, 16 + 40)
        with pytest.raises(KeyboardInterrupt):
            goal_attainment_improved(_problem(killer),
                                     checkpoint_store=store,
                                     on_generation=resumed, **kwargs)
        goal_attainment_improved(_problem(), checkpoint_store=store,
                                 on_generation=resumed, **kwargs)
        assert resumed.is_contiguous()
        assert _trace_key(resumed) == _trace_key(clean)


# ----------------------------------------------------------------------
# health/metrics counter consistency across evaluation paths
# ----------------------------------------------------------------------

def _fail_below(x, threshold=0.3):
    """Deterministic failure: picklable, identical in every process."""
    x = np.asarray(x, dtype=float)
    if x[0] < threshold:
        raise ValueError("synthetic singular matrix")
    return float(np.sum(x ** 2))


def _crash_once_then_fail_below(x, flag_path=""):
    """Kill the worker process once, then behave like _fail_below.

    The first worker that draws the crash candidate creates *flag_path*
    atomically and dies; every later attempt sees the flag and
    evaluates normally — so exactly one pool rebuild happens.
    """
    x = np.asarray(x, dtype=float)
    if x[0] > 0.9 and multiprocessing.parent_process() is not None:
        try:
            fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(17)
    return _fail_below(x)


def _population(n_fail=4, n_ok=8, crash=False):
    rng = np.random.default_rng(42)
    rows = [np.array([0.1, rng.random()]) for _ in range(n_fail)]
    rows += [np.array([0.5, rng.random()]) for _ in range(n_ok)]
    if crash:
        rows.append(np.array([0.95, 0.5]))
    return np.stack(rows)


class TestCounterConsistency:
    def test_serial_and_pool_health_identical(self):
        population = _population(n_fail=4, n_ok=8)

        serial = PopulationEvaluator(_fail_below)
        serial_values = serial(population)

        with PopulationEvaluator(_fail_below, workers=2) as pool:
            pool_values = pool(population)

        np.testing.assert_array_equal(serial_values, pool_values)
        assert serial.health.failures == pool.health.failures
        assert serial.health.n_failures == 4
        assert serial.health.failures == {CATEGORY_SINGULAR: 4}

        # Absorbed into metrics, both paths export the same counters —
        # and absorbing twice does not inflate them.
        for health in (serial.health, pool.health):
            metrics = Metrics()
            metrics.absorb_run_health(health)
            once = metrics.counters()
            metrics.absorb_run_health(health)
            assert metrics.counters() == once
            assert metrics.counter("health.failures.singular") == 4

    def test_pool_rebuild_does_not_double_count(self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        objective = functools.partial(_crash_once_then_fail_below,
                                      flag_path=flag)
        population = _population(n_fail=4, n_ok=6, crash=True)

        with PopulationEvaluator(objective, workers=2,
                                 max_pool_rebuilds=3) as evaluator:
            values = evaluator(population)

        # The crash aborted the first attempt mid-collection; the
        # retried generation must count each failing candidate exactly
        # once, not once per attempt.
        assert evaluator.health.pool_rebuilds == 1
        assert evaluator.health.n_failures == 4
        assert evaluator.health.failures == {CATEGORY_SINGULAR: 4}
        assert np.sum(np.isinf(values)) == 4
        assert os.path.exists(flag)

    def test_serial_fallback_counts_once(self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        objective = functools.partial(_crash_once_then_fail_below,
                                      flag_path=flag)
        population = _population(n_fail=3, n_ok=5, crash=True)

        # No rebuild budget: the crash abandons the pool and the same
        # generation re-runs on the in-process serial path (where the
        # crash branch is inert).
        with PopulationEvaluator(objective, workers=2,
                                 max_pool_rebuilds=0) as evaluator:
            values = evaluator(population)

        assert evaluator.health.serial_fallback
        assert evaluator.health.pool_rebuilds == 0
        assert evaluator.health.n_failures == 3
        assert np.sum(np.isinf(values)) == 3

    def test_fault_injector_counts_match_health(self):
        injector = FaultInjector(rosenbrock, p_raise=0.3, seed=5)
        evaluator = PopulationEvaluator(injector)
        rng = np.random.default_rng(1)
        for _ in range(4):
            evaluator(rng.random((10, 2)))
        assert injector.n_calls == 40
        assert injector.n_raised > 0
        assert evaluator.health.n_failures == injector.n_injected

        metrics = Metrics()
        metrics.absorb_run_health(evaluator.health)
        assert metrics.counter("health.n_failures") == injector.n_injected


# ----------------------------------------------------------------------
# traced run smoke test (backs the CI artifact job)
# ----------------------------------------------------------------------

def test_traced_goal_attainment_span_tree_well_formed():
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        goal_attainment_improved(
            _problem(), goals=np.array([0.3, 0.3]), n_probe=16,
            n_starts=2, tighten_rounds=1, seed=9,
        )
    finally:
        set_tracer(previous)

    records = tracer.records
    names = {r.name for r in records}
    assert "goal_attainment.probe" in names
    assert "goal_attainment.nlp_start" in names

    # Well-formed forest: unique ids, every parent id resolvable, and
    # children strictly inside their parents' time window.
    ids = [r.span_id for r in records]
    assert len(ids) == len(set(ids))
    by_id = {r.span_id: r for r in records}
    for record in records:
        if record.parent_id is None:
            continue
        parent = by_id[record.parent_id]
        assert parent.start_s <= record.start_s + 1e-9
        assert (record.start_s + record.duration_s
                <= parent.start_s + parent.duration_s + 1e-9)

    tree = tracer.span_tree()
    assert tree, "expected at least one root span"
    assert tracer.total_time() > 0.0
    # The flamegraph summary renders without error and mentions the
    # probe stage.
    assert "goal_attainment" in tracer.format_spans()
