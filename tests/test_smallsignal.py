"""Small-signal model tests (repro.devices.smallsignal)."""

import numpy as np
import pytest

from repro.devices.dcmodels import AngelovModel
from repro.devices.smallsignal import (
    CapacitanceModel,
    ExtrinsicParams,
    IntrinsicParams,
    PHEMTSmallSignal,
    embed_intrinsic,
)
from repro.rf.frequency import FrequencyGrid


@pytest.fixture
def fg():
    return FrequencyGrid.linear(0.5e9, 4.0e9, 8)


@pytest.fixture
def device():
    return PHEMTSmallSignal(AngelovModel())


class TestIntrinsic:
    def test_ft_formula(self):
        intrinsic = IntrinsicParams(gm=0.2, gds=2e-3, cgs=0.8e-12,
                                    cgd=0.2e-12, cds=0.3e-12, ri=2.0,
                                    tau=2e-12)
        assert intrinsic.ft_hz == pytest.approx(
            0.2 / (2 * np.pi * 1e-12), rel=1e-9
        )

    def test_y_matrix_low_frequency_limits(self):
        intrinsic = IntrinsicParams(gm=0.2, gds=2e-3, cgs=0.8e-12,
                                    cgd=0.2e-12, cds=0.3e-12, ri=2.0,
                                    tau=2e-12)
        y = intrinsic.y_matrix(2 * np.pi * 1e6)  # 1 MHz
        assert abs(y[0, 0, 0]) < 1e-4          # gate looks open
        assert y[0, 1, 0] == pytest.approx(0.2, rel=1e-4)  # y21 -> gm
        assert y[0, 1, 1].real == pytest.approx(2e-3, rel=1e-4)

    def test_capacitance_laws_monotonic(self):
        caps = CapacitanceModel()
        vgs = np.linspace(-0.5, 1.0, 20)
        assert np.all(np.diff(caps.cgs(vgs)) >= 0)
        vds = np.linspace(0.0, 5.0, 20)
        assert np.all(np.diff(caps.cgd(vds)) <= 0)


class TestEmbedding:
    def test_analytic_equals_mna(self, fg, device):
        analytic = device.twoport(fg, 0.55, 3.0)
        mna = device.as_noisy_twoport(fg, 0.55, 3.0)
        np.testing.assert_allclose(mna.network.s, analytic.s, atol=1e-10)

    def test_parasitics_reduce_gain_at_high_f(self, fg):
        bare = ExtrinsicParams(rg=0.0, rd=0.0, rs=0.0, lg=1e-15, ld=1e-15,
                               ls=1e-15, cpg=1e-18, cpd=1e-18)
        heavy = ExtrinsicParams(rg=3.0, rd=3.0, rs=2.0, lg=1e-9, ld=1e-9,
                                ls=0.5e-9, cpg=0.5e-12, cpd=0.5e-12)
        clean = PHEMTSmallSignal(AngelovModel(), extrinsics=bare)
        dirty = PHEMTSmallSignal(AngelovModel(), extrinsics=heavy)
        f_top = FrequencyGrid.single(4e9)
        s21_clean = abs(clean.twoport(f_top, 0.55, 3.0).s21[0])
        s21_dirty = abs(dirty.twoport(f_top, 0.55, 3.0).s21[0])
        assert s21_dirty < s21_clean

    def test_source_degeneration_via_embedding(self, fg):
        # Larger Ls lowers |S21| (series-series feedback).
        small_ls = PHEMTSmallSignal(
            AngelovModel(), extrinsics=ExtrinsicParams(ls=0.05e-9)
        )
        big_ls = PHEMTSmallSignal(
            AngelovModel(), extrinsics=ExtrinsicParams(ls=1.0e-9)
        )
        f0 = FrequencyGrid.single(2e9)
        assert abs(big_ls.twoport(f0, 0.55, 3.0).s21[0]) < abs(
            small_ls.twoport(f0, 0.55, 3.0).s21[0]
        )

    def test_embed_intrinsic_shape(self, fg):
        intrinsic = IntrinsicParams(gm=0.2, gds=2e-3, cgs=0.8e-12,
                                    cgd=0.2e-12, cds=0.3e-12, ri=2.0,
                                    tau=2e-12)
        network = embed_intrinsic(intrinsic, ExtrinsicParams(), fg)
        assert network.s.shape == (len(fg), 2, 2)


class TestNoise:
    def test_bad_bias_rejected(self, fg):
        # A hard-threshold model below pinch-off has gds == 0 exactly;
        # the MNA emission must refuse the invalid bias.
        from repro.devices.dcmodels import CurticeQuadratic

        device = PHEMTSmallSignal(CurticeQuadratic())
        with pytest.raises(ValueError):
            device.as_noisy_twoport(fg, -1.0, 3.0)

    def test_nf_increases_with_drain_temperature(self, fg):
        cool = PHEMTSmallSignal(AngelovModel(), td0=500.0, td_slope=0.0)
        hot = PHEMTSmallSignal(AngelovModel(), td0=5000.0, td_slope=0.0)
        nf_cool = cool.as_noisy_twoport(fg, 0.55, 3.0).noise_figure_db()
        nf_hot = hot.as_noisy_twoport(fg, 0.55, 3.0).noise_figure_db()
        assert np.all(nf_hot > nf_cool)

    def test_nfmin_increases_with_frequency(self, fg, golden_device):
        params = golden_device.small_signal.as_noisy_twoport(
            fg, 0.52, 3.0
        ).noise_parameters
        assert np.all(np.diff(params.nfmin_db) > 0)

    def test_fukui_tracks_pospieszalski_trend(self, golden_device):
        # Independent analytic check: Fukui and the MNA-Pospieszalski
        # NFmin must agree within a factor ~2 of (F-1) over the band.
        from repro.devices.noise_models import fukui_fmin

        fg = FrequencyGrid.linear(1e9, 3e9, 5)
        ss = golden_device.small_signal
        params = ss.as_noisy_twoport(fg, 0.52, 3.0).noise_parameters
        intrinsic = ss.intrinsic_at(0.52, 3.0)
        fukui = fukui_fmin(
            fg.f_hz, intrinsic.gm, intrinsic.cgs, intrinsic.cgd,
            ss.extrinsics.rg, ss.extrinsics.rs,
        )
        ratio = (params.fmin - 1.0) / (fukui - 1.0)
        assert np.all(ratio > 0.4)
        assert np.all(ratio < 2.5)

    def test_drain_temperature_scales_with_current(self, golden_device):
        ss = golden_device.small_signal
        td_low = ss.drain_temperature(0.40, 3.0)
        td_high = ss.drain_temperature(0.65, 3.0)
        assert td_high > td_low
