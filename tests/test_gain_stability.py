"""Gain and stability tests (repro.rf.gain, repro.rf.stability)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf import gain as gn
from repro.rf import stability as stab


def _random_s(seed, scale=0.5, n=4):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((n, 2, 2)) + 1j * rng.standard_normal((n, 2, 2))
    ) / np.sqrt(2)


def _unilateral_amp(s21=4.0, s11=0.3, s22=0.4, n=3):
    s = np.zeros((n, 2, 2), dtype=complex)
    s[:, 0, 0] = s11
    s[:, 1, 0] = s21
    s[:, 1, 1] = s22
    return s


class TestGains:
    def test_matched_transducer_gain_is_s21_squared(self):
        s = _random_s(0)
        np.testing.assert_allclose(
            gn.transducer_gain(s), np.abs(s[..., 1, 0]) ** 2, rtol=1e-12
        )

    def test_gt_equals_ga_at_output_conjugate_match(self):
        # With the source at Gamma_s and the load conjugate-matched to
        # Gamma_out, GT == GA by definition.
        s = _random_s(3, scale=0.3)
        gamma_s = 0.2 - 0.1j
        gamma_out = gn.output_reflection(s, gamma_s)
        gt = gn.transducer_gain(s, gamma_s, np.conjugate(gamma_out))
        ga = gn.available_gain(s, gamma_s)
        np.testing.assert_allclose(gt, ga, rtol=1e-9)

    def test_gt_equals_gp_at_input_conjugate_match(self):
        s = _random_s(4, scale=0.3)
        gamma_l = -0.15 + 0.25j
        gamma_in = gn.input_reflection(s, gamma_l)
        gt = gn.transducer_gain(s, np.conjugate(gamma_in), gamma_l)
        gp = gn.operating_gain(s, gamma_l)
        np.testing.assert_allclose(gt, gp, rtol=1e-9)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_gt_never_exceeds_ga_or_gp(self, seed):
        s = _random_s(seed, scale=0.35)
        rng = np.random.default_rng(seed + 1)
        gamma_s = 0.4 * (rng.random() - 0.5) + 0.4j * (rng.random() - 0.5)
        gamma_l = 0.4 * (rng.random() - 0.5) + 0.4j * (rng.random() - 0.5)
        gt = gn.transducer_gain(s, gamma_s, gamma_l)
        ga = gn.available_gain(s, gamma_s)
        gp = gn.operating_gain(s, gamma_l)
        assert np.all(gt <= ga * (1 + 1e-9))
        assert np.all(gt <= gp * (1 + 1e-9))

    def test_unilateral_gain_matches_full_for_unilateral_network(self):
        s = _unilateral_amp()
        gamma_s, gamma_l = 0.2 + 0.1j, -0.1 + 0.3j
        np.testing.assert_allclose(
            gn.unilateral_transducer_gain(s, gamma_s, gamma_l),
            gn.transducer_gain(s, gamma_s, gamma_l),
            rtol=1e-12,
        )

    def test_msg_is_s21_over_s12(self):
        s = _random_s(7)
        np.testing.assert_allclose(
            gn.maximum_stable_gain(s),
            np.abs(s[..., 1, 0] / s[..., 0, 1]),
        )

    def test_mag_nan_when_unstable(self):
        # A strongly bilateral high-gain device has K < 1.
        s = np.array([[[0.8 + 0j, 0.5], [5.0, 0.8]]], dtype=complex)
        assert float(stab.rollett_k(s)[0]) < 1.0
        assert np.isnan(gn.maximum_available_gain(s)[0])

    def test_mag_finite_when_stable(self):
        s = np.array([[[0.2 + 0j, 0.01], [3.0, 0.2]]], dtype=complex)
        assert float(stab.rollett_k(s)[0]) > 1.0
        mag = gn.maximum_available_gain(s)[0]
        assert np.isfinite(mag)
        assert mag <= gn.maximum_stable_gain(s)[0]


class TestStability:
    def test_passive_network_unconditionally_stable(self):
        # Any strictly passive reciprocal network has mu > 1.
        s = 0.5 * np.array(
            [[[0.3 + 0.1j, 0.6 - 0.2j], [0.6 - 0.2j, -0.2 + 0.3j]]]
        )
        assert bool(stab.is_unconditionally_stable(s)[0])

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_mu_and_k_tests_agree(self, seed):
        # Edwards-Sinsky: mu > 1  <=>  (K > 1 and |delta| < 1).
        s = _random_s(seed, scale=0.8, n=1)
        mu = float(stab.mu_source(s)[0])
        k = float(stab.rollett_k(s)[0])
        delta = abs(stab.determinant(s)[0])
        k_test = k > 1.0 and delta < 1.0
        assert (mu > 1.0) == k_test

    def test_mu_source_and_load_same_sign_of_stability(self):
        s = _random_s(11, scale=0.8, n=8)
        source_stable = stab.mu_source(s) > 1.0
        load_stable = stab.mu_load(s) > 1.0
        np.testing.assert_array_equal(source_stable, load_stable)

    def test_stability_circle_classifies_terminations(self):
        # Potentially unstable device: terminations inside/outside the
        # load stability circle must flip the sign of |Gamma_in| - 1.
        s2 = np.array([[0.7 + 0.2j, 0.4], [4.0, 0.5 - 0.3j]], dtype=complex)
        circle = stab.load_stability_circle(s2)
        probe_angles = np.linspace(0, 2 * np.pi, 24, endpoint=False)
        for radius_scale, expect_inside in ((0.8, True), (1.25, False)):
            gammas = circle.center + radius_scale * circle.radius * np.exp(
                1j * probe_angles
            )
            gammas = gammas[np.abs(gammas) < 1.0]
            if gammas.size == 0:
                continue
            from repro.rf.gain import input_reflection

            gamma_in = input_reflection(s2[None, :, :], gammas[:, None])
            unstable_input = np.abs(gamma_in) > 1.0
            inside = circle.contains(gammas)
            np.testing.assert_array_equal(inside, expect_inside)
            # |Gamma_in| > 1 exactly on the unstable side of the circle.
            is_stable_predicted = circle.is_stable(gammas)
            np.testing.assert_array_equal(
                is_stable_predicted, ~unstable_input.ravel()
            )

    def test_circle_requires_single_matrix(self):
        with pytest.raises(ValueError):
            stab.source_stability_circle(np.zeros((3, 2, 2)))
