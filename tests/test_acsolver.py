"""MNA AC-solver tests (repro.analysis.acsolver).

Validation strategy: every circuit that has an analytic cascade-algebra
answer must match it exactly, and the textbook noise anchors must hold.
"""

import numpy as np
import pytest

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import (
    series_impedance,
    shunt_admittance,
    transmission_line,
)
from repro.util.constants import T0_KELVIN


@pytest.fixture
def fg():
    return FrequencyGrid.linear(0.8e9, 2.4e9, 7)


def _tpad(z0=50.0, loss_db=10.0, temperature=T0_KELVIN):
    k = 10 ** (loss_db / 20.0)
    r_series = z0 * (k - 1) / (k + 1)
    r_shunt = 2 * z0 * k / (k * k - 1)
    circuit = Circuit("tpad")
    circuit.port("p1", "a")
    circuit.port("p2", "b")
    circuit.resistor("R1", "a", "mid", r_series, temperature=temperature)
    circuit.resistor("R2", "mid", "gnd", r_shunt, temperature=temperature)
    circuit.resistor("R3", "mid", "b", r_series, temperature=temperature)
    return circuit


class TestSignalPath:
    def test_series_resistor_matches_analytic(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 120.0)
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(
            result.s, series_impedance(fg, 120.0).s, atol=1e-10
        )

    def test_rlc_ladder_matches_cascade_algebra(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "m1", 25.0)
        circuit.inductor("L1", "m1", "b", 5e-9)
        circuit.capacitor("C1", "m1", "gnd", 2e-12)
        result = solve_ac(circuit, fg)
        analytic = (
            series_impedance(fg, 25.0)
            ** shunt_admittance(fg, 1j * fg.omega * 2e-12)
            ** series_impedance(fg, 1j * fg.omega * 5e-9)
        )
        np.testing.assert_allclose(result.s, analytic.s, atol=1e-10)

    def test_transmission_line_element_matches_analytic(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.transmission_line("T1", "a", "b", 70.0, 0.15 + 1.2j)
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(
            result.s, transmission_line(fg, 70.0, 0.15 + 1.2j).s, atol=1e-9
        )

    def test_vccs_matches_y_parameters(self, fg):
        circuit = Circuit()
        circuit.port("p1", "g").port("p2", "d")
        circuit.vccs("G1", "d", "gnd", "g", "gnd", 0.04, tau=5e-12)
        result = solve_ac(circuit, fg, compute_noise=False)
        y = np.zeros((len(fg), 2, 2), dtype=complex)
        y[:, 1, 0] = 0.04 * np.exp(-1j * fg.omega * 5e-12)
        np.testing.assert_allclose(result.s, cv.y_to_s(y), atol=1e-10)

    def test_yblock_scalar_fallback(self, fg):
        # A scalar-only y_function must still work (looped internally).
        def scalar_y(f_hz: float):
            y = 1.0 / (75.0 + 2j * np.pi * f_hz * 1e-9)
            return np.array([[y, -y], [-y, y]], dtype=complex)

        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.y_block("X1", ("a", "b"), scalar_y)
        result = solve_ac(circuit, fg, compute_noise=False)
        analytic = series_impedance(fg, 75.0 + 1j * fg.omega * 1e-9)
        np.testing.assert_allclose(result.s, analytic.s, atol=1e-10)

    def test_passive_circuit_is_reciprocal_and_passive(self, fg):
        result = solve_ac(_tpad(), fg)
        network = result.as_twoport()
        assert network.is_reciprocal(tol=1e-9)
        assert network.is_passive()

    def test_three_port_tee(self, fg):
        circuit = Circuit()
        for k in range(3):
            # Distinct port nodes with negligible access resistance
            # (coincident port nodes are a degenerate formulation).
            circuit.port(f"p{k + 1}", f"arm{k + 1}")
            circuit.resistor(f"R{k + 1}", f"arm{k + 1}", "junction", 1e-6,
                             temperature=0.0)
        result = solve_ac(circuit, fg, compute_noise=False)
        np.testing.assert_allclose(
            result.s[0], np.full((3, 3), 2 / 3) - np.eye(3), atol=1e-6
        )


class TestNoisePath:
    def test_attenuator_nf_equals_loss(self, fg):
        for loss_db in (3.0, 10.0, 15.0):
            result = solve_ac(_tpad(loss_db=loss_db), fg)
            noisy = result.as_noisy_twoport()
            np.testing.assert_allclose(
                noisy.noise_figure_db(), loss_db, rtol=1e-9
            )

    def test_noiseless_resistors_give_zero_cy(self, fg):
        circuit = _tpad(temperature=0.0)
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(result.cy, 0.0, atol=1e-40)

    def test_mna_noise_matches_cascade_algebra(self, fg):
        # Series R + shunt R network, both at T0: MNA CY vs TwoPort path.
        from repro.rf.noise import NoisyTwoPort

        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 80.0, temperature=T0_KELVIN)
        circuit.resistor("R2", "b", "gnd", 200.0, temperature=T0_KELVIN)
        result = solve_ac(circuit, fg)
        mna_nf = result.as_noisy_twoport().noise_figure_db()
        analytic = NoisyTwoPort.from_passive(
            series_impedance(fg, 80.0) ** shunt_admittance(fg, 1 / 200.0),
            T0_KELVIN,
        )
        np.testing.assert_allclose(
            mna_nf, analytic.noise_figure_db(), rtol=1e-9
        )

    def test_explicit_noise_current_source(self, fg):
        # A noiseless resistor plus an explicit 2kT/R source must equal
        # the plain noisy resistor.
        from repro.util.constants import BOLTZMANN

        def build(explicit):
            circuit = Circuit()
            circuit.port("p1", "a").port("p2", "b")
            if explicit:
                circuit.resistor("R1", "a", "b", 100.0, temperature=0.0)
                psd = 2.0 * BOLTZMANN * T0_KELVIN / 100.0
                circuit.noise_current("IN1", "a", "b", lambda f: psd)
            else:
                circuit.resistor("R1", "a", "b", 100.0,
                                 temperature=T0_KELVIN)
            return solve_ac(circuit, fg)

        np.testing.assert_allclose(
            build(True).cy, build(False).cy, rtol=1e-9
        )


class TestProbesAndErrors:
    def test_probe_transfers(self, fg):
        # Voltage divider: probing the midpoint must give half the port
        # voltage of a matched divider... compute analytically instead.
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "mid", 50.0)
        circuit.resistor("R2", "mid", "b", 50.0)
        result = solve_ac(circuit, fg, probe_nodes=("mid", "gnd"))
        v_mid = result.transfer_to("mid")
        # Unit current into port 1 (port 2 loaded by 50): the node
        # voltages solve a simple ladder; check mid is between a and b.
        v_ground = result.transfer_to("gnd")
        np.testing.assert_allclose(v_ground, 0.0, atol=1e-30)
        assert np.all(np.abs(v_mid[:, 0]) > 0)

    def test_unknown_probe_rejected(self, fg):
        circuit = _tpad()
        with pytest.raises(KeyError):
            solve_ac(circuit, fg, probe_nodes=("nonexistent",))

    def test_transfer_without_probe_raises(self, fg):
        result = solve_ac(_tpad(), fg)
        with pytest.raises(ValueError):
            result.transfer_to("mid")

    def test_no_ports_rejected(self, fg):
        circuit = Circuit()
        circuit.resistor("R1", "a", "gnd", 50.0)
        with pytest.raises(ValueError):
            solve_ac(circuit, fg)

    def test_mixed_port_impedance_rejected(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a", z0=50.0)
        circuit.port("p2", "b", z0=75.0)
        circuit.resistor("R1", "a", "b", 10.0)
        with pytest.raises(ValueError):
            solve_ac(circuit, fg)

    def test_port_on_ground_rejected(self, fg):
        circuit = Circuit()
        circuit.port("p1", "gnd")
        with pytest.raises(ValueError):
            solve_ac(circuit, fg)

    def test_floating_island_detected(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 50.0)
        # A floating pair of nodes disconnected from everything.
        circuit.resistor("R2", "x", "y", 10.0)
        with pytest.raises(ValueError):
            solve_ac(circuit, fg)

    def test_as_noisy_twoport_requires_two_ports(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a")
        circuit.resistor("R1", "a", "gnd", 50.0)
        result = solve_ac(circuit, fg)
        with pytest.raises(ValueError):
            result.as_noisy_twoport()
