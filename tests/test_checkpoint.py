"""Checkpoint/resume: deterministic bit-for-bit continuation.

A run killed mid-flight and resumed from its last checkpoint must
finish identical — same x, same fitness, same history, same nfev — to
a run that was never interrupted, because the checkpoint carries the
complete algorithm state including the RNG bit-generator state.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.optimize import (
    CheckpointError,
    FileCheckpointStore,
    MemoryCheckpointStore,
    differential_evolution,
    nsga2,
    particle_swarm,
)
from repro.optimize.checkpoint import Checkpoint, resume_or_none
from repro.optimize.goal_attainment import (
    MultiObjectiveProblem,
    goal_attainment_improved,
)


def rosenbrock(x):
    x = np.asarray(x, dtype=float)
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2
                        + (1.0 - x[:-1]) ** 2))


class KillAfter:
    """Objective wrapper that interrupts the run after n calls."""

    def __init__(self, objective, n_calls):
        self._objective = objective
        self._remaining = int(n_calls)

    def __call__(self, x):
        self._remaining -= 1
        if self._remaining < 0:
            raise KeyboardInterrupt("simulated kill")
        return self._objective(x)


# ----------------------------------------------------------------------
# stores
# ----------------------------------------------------------------------

def test_memory_store_roundtrip():
    store = MemoryCheckpointStore()
    assert store.load() is None
    ckpt = Checkpoint("de", 3, None, {"a": np.arange(4)})
    store.save(ckpt)
    assert store.n_saves == 1
    loaded = store.load()
    assert loaded.algorithm == "de" and loaded.iteration == 3
    store.clear()
    assert store.load() is None


def test_file_store_roundtrip_and_clear(tmp_path):
    path = tmp_path / "run.ckpt"
    store = FileCheckpointStore(str(path))
    assert store.load() is None
    store.save(Checkpoint("pso", 7, {"state": 1}, {"v": np.ones(3)}))
    assert path.exists()
    loaded = store.load()
    assert loaded.iteration == 7
    assert np.array_equal(loaded.payload["v"], np.ones(3))
    store.clear()
    assert not path.exists()
    store.clear()  # idempotent


def test_file_store_atomic_no_tmp_left_behind(tmp_path):
    path = tmp_path / "nested" / "run.ckpt"
    store = FileCheckpointStore(str(path))
    for i in range(3):
        store.save(Checkpoint("de", i, None, {}))
    # Only the checkpoint and its last-good rotation may remain — no
    # mkstemp leftovers.
    leftovers = [p for p in path.parent.iterdir()
                 if p not in (path, path.with_suffix(".ckpt.prev"))]
    assert leftovers == []
    assert store.load().iteration == 2


def test_file_store_rotates_previous_checkpoint(tmp_path):
    path = tmp_path / "run.ckpt"
    store = FileCheckpointStore(str(path))
    store.save(Checkpoint("de", 1, None, {}))
    store.save(Checkpoint("de", 2, None, {}))
    prev = FileCheckpointStore(store.previous_path)
    assert prev.load().iteration == 1
    assert store.load().iteration == 2


def test_file_store_corrupt_quarantined_in_warn_mode(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_bytes(b"\x80\x04 definitely not a pickle")
    store = FileCheckpointStore(str(path))
    with pytest.warns(UserWarning, match="quarantin"):
        assert store.load() is None
    assert not path.exists()
    assert (tmp_path / "run.ckpt.corrupt").exists()


def test_file_store_corrupt_raises_in_strict_mode(tmp_path):
    from repro.guards import guard_mode

    path = tmp_path / "run.ckpt"
    path.write_bytes(b"not a pickle")
    with guard_mode("strict"):
        with pytest.raises(CheckpointError):
            FileCheckpointStore(str(path)).load()
    assert path.exists()  # strict mode does not quarantine


def test_file_store_wrong_object_quarantined(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.warns(UserWarning, match="quarantin"):
        assert FileCheckpointStore(str(path)).load() is None
    assert (tmp_path / "run.ckpt.corrupt").exists()


def test_file_store_crc_detects_bit_flip(tmp_path):
    path = tmp_path / "run.ckpt"
    store = FileCheckpointStore(str(path))
    store.save(Checkpoint("de", 4, None, {"v": np.arange(5)}))
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.warns(UserWarning, match="quarantin"):
        assert store.load() is None


def test_file_store_falls_back_to_previous_good(tmp_path):
    path = tmp_path / "run.ckpt"
    store = FileCheckpointStore(str(path))
    store.save(Checkpoint("de", 1, None, {}))
    store.save(Checkpoint("de", 2, None, {}))
    # Truncate the live checkpoint mid-blob; resume must quarantine it
    # and fall back to the rotated last-good copy instead of crashing.
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.warns(UserWarning, match="quarantin"):
        loaded = store.load()
    assert loaded is not None and loaded.iteration == 1
    assert (tmp_path / "run.ckpt.corrupt").exists()


def test_file_store_legacy_plain_pickle_still_loads(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_bytes(pickle.dumps(Checkpoint("pso", 9, None, {})))
    loaded = FileCheckpointStore(str(path)).load()
    assert loaded is not None and loaded.iteration == 9


def test_file_store_retries_transient_oserror(tmp_path, monkeypatch):
    path = tmp_path / "run.ckpt"
    store = FileCheckpointStore(str(path))
    real_replace = os.replace
    failures = {"n": 2}

    def flaky_replace(src, dst):
        if failures["n"] > 0 and dst == store.path:
            failures["n"] -= 1
            raise OSError("transient I/O hiccup")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", flaky_replace)
    monkeypatch.setattr(time, "sleep", lambda s: None)
    store.save(Checkpoint("de", 5, None, {}))
    assert store.io_retries == 2
    assert store.load().iteration == 5


def test_resume_or_none_algorithm_mismatch():
    store = MemoryCheckpointStore()
    store.save(Checkpoint("differential_evolution", 5, None, {}))
    with pytest.raises(CheckpointError):
        resume_or_none(store, "particle_swarm")
    assert resume_or_none(None, "whatever") is None


# ----------------------------------------------------------------------
# kill/resume bit-for-bit
# ----------------------------------------------------------------------

def test_de_kill_and_resume_bit_for_bit():
    kwargs = dict(lower=-2 * np.ones(2), upper=2 * np.ones(2),
                  population_size=12, max_iterations=40, seed=17)
    clean = differential_evolution(rosenbrock, **kwargs)

    store = MemoryCheckpointStore()
    # Kill mid-generation-13: init costs 12 evals, each generation 12.
    killer = KillAfter(rosenbrock, 12 + 12 * 12 + 5)
    with pytest.raises(KeyboardInterrupt):
        differential_evolution(killer, checkpoint_store=store,
                               checkpoint_every=5, **kwargs)
    saved = store.load()
    assert saved is not None and saved.iteration == 10

    resumed = differential_evolution(rosenbrock, checkpoint_store=store,
                                     checkpoint_every=5, **kwargs)
    assert np.array_equal(resumed.x, clean.x)
    assert resumed.fun == clean.fun
    assert resumed.nfev == clean.nfev
    assert resumed.history == clean.history
    assert resumed.health.resumed_at == 10
    assert store.load() is None  # cleared on completion


def test_pso_kill_and_resume_bit_for_bit():
    kwargs = dict(lower=-2 * np.ones(2), upper=2 * np.ones(2),
                  n_particles=10, max_iterations=30, seed=23)
    clean = particle_swarm(rosenbrock, **kwargs)

    store = MemoryCheckpointStore()
    killer = KillAfter(rosenbrock, 10 + 10 * 12 + 3)
    with pytest.raises(KeyboardInterrupt):
        particle_swarm(killer, checkpoint_store=store,
                       checkpoint_every=5, **kwargs)
    assert store.load() is not None

    resumed = particle_swarm(rosenbrock, checkpoint_store=store,
                             checkpoint_every=5, **kwargs)
    assert np.array_equal(resumed.x, clean.x)
    assert resumed.fun == clean.fun
    assert resumed.nfev == clean.nfev
    assert resumed.history == clean.history
    assert resumed.health.resumed_at is not None
    assert store.load() is None


def test_de_resume_rejects_mismatched_shape():
    store = MemoryCheckpointStore()
    killer = KillAfter(rosenbrock, 10 * 7)
    with pytest.raises(KeyboardInterrupt):
        differential_evolution(killer, -np.ones(2), np.ones(2),
                               population_size=10, max_iterations=30,
                               seed=1, checkpoint_store=store,
                               checkpoint_every=2)
    with pytest.raises(CheckpointError):
        differential_evolution(rosenbrock, -np.ones(3), np.ones(3),
                               population_size=10, max_iterations=30,
                               seed=1, checkpoint_store=store)


def test_de_file_store_survives_process_style_resume(tmp_path):
    path = str(tmp_path / "de.ckpt")
    kwargs = dict(lower=-np.ones(2), upper=np.ones(2),
                  population_size=8, max_iterations=20, seed=3)
    clean = differential_evolution(rosenbrock, **kwargs)
    killer = KillAfter(rosenbrock, 8 + 8 * 10 + 1)
    with pytest.raises(KeyboardInterrupt):
        differential_evolution(killer,
                               checkpoint_store=FileCheckpointStore(path),
                               checkpoint_every=4, **kwargs)
    # A brand-new store object (as a fresh process would build).
    resumed = differential_evolution(
        rosenbrock, checkpoint_store=FileCheckpointStore(path),
        checkpoint_every=4, **kwargs,
    )
    assert np.array_equal(resumed.x, clean.x)
    assert resumed.nfev == clean.nfev


def _biobjective_problem():
    def objectives(x):
        x = np.asarray(x, dtype=float)
        return np.array([float(np.sum(x ** 2)),
                         float(np.sum((x - 1.0) ** 2))])

    return objectives


def test_nsga2_kill_and_resume_bit_for_bit():
    objectives = _biobjective_problem()

    def make_problem(fn):
        return MultiObjectiveProblem(
            objectives=fn, n_objectives=2,
            lower=np.zeros(2), upper=np.ones(2),
        )

    kwargs = dict(population_size=12, n_generations=20, seed=5)
    clean = nsga2(make_problem(objectives), **kwargs)

    store = MemoryCheckpointStore()
    killer = KillAfter(objectives, 12 + 12 * 8 + 4)
    with pytest.raises(KeyboardInterrupt):
        nsga2(make_problem(killer), checkpoint_store=store,
              checkpoint_every=3, **kwargs)
    assert store.load() is not None

    resumed = nsga2(make_problem(objectives), checkpoint_store=store,
                    checkpoint_every=3, **kwargs)
    assert np.array_equal(resumed.x, clean.x)
    assert np.array_equal(resumed.objectives, clean.objectives)
    assert resumed.nfev == clean.nfev
    assert resumed.health.resumed_at is not None
    assert store.load() is None


def test_goal_attainment_improved_kill_and_resume():
    objectives = _biobjective_problem()

    def make_problem(fn):
        return MultiObjectiveProblem(
            objectives=fn, n_objectives=2,
            lower=np.zeros(2), upper=np.ones(2),
        )

    kwargs = dict(goals=np.array([0.3, 0.3]), n_probe=16, n_starts=3,
                  tighten_rounds=1, seed=9)
    clean = goal_attainment_improved(make_problem(objectives), **kwargs)

    store = MemoryCheckpointStore()
    # Kill inside the multi-start stage, past the 16 probe evaluations.
    killer = KillAfter(objectives, 16 + 40)
    with pytest.raises(KeyboardInterrupt):
        goal_attainment_improved(make_problem(killer),
                                 checkpoint_store=store, **kwargs)
    assert store.load() is not None

    resumed = goal_attainment_improved(make_problem(objectives),
                                       checkpoint_store=store, **kwargs)
    assert np.array_equal(resumed.x, clean.x)
    assert resumed.gamma == clean.gamma
    assert resumed.nfev == clean.nfev
    assert resumed.history == clean.history
    assert store.load() is None


def test_checkpointing_does_not_change_the_result():
    kwargs = dict(lower=-np.ones(3), upper=np.ones(3),
                  population_size=10, max_iterations=25, seed=8)
    plain = differential_evolution(rosenbrock, **kwargs)
    store = MemoryCheckpointStore()
    with_store = differential_evolution(rosenbrock, checkpoint_store=store,
                                        checkpoint_every=4, **kwargs)
    assert np.array_equal(plain.x, with_store.x)
    assert plain.fun == with_store.fun
    assert plain.nfev == with_store.nfev
    assert store.n_saves > 0
    assert store.load() is None


def test_file_store_survives_two_concurrent_writers(tmp_path):
    """Two writers racing one path: last writer wins, nothing corrupts.

    The scenario is a lease takeover whose previous owner is still
    flushing its final snapshot while the new owner starts writing.
    The atomic write-then-rename discipline means every load along the
    way sees a *complete* checkpoint from one writer or the other —
    never a torn file, never a quarantine on this clean interleaving.
    """
    import threading

    path = str(tmp_path / "shared.ckpt")
    store_a = FileCheckpointStore(path)
    store_b = FileCheckpointStore(path)
    n_rounds = 60
    barrier = threading.Barrier(2)
    errors = []

    def writer(store, tag):
        try:
            barrier.wait()
            for i in range(n_rounds):
                store.save(Checkpoint(
                    algorithm="de", iteration=i,
                    rng_state=None, payload={"writer": tag, "i": i}))
        except BaseException as exc:  # noqa: BLE001 - fail the test below
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(store_a, "a")),
               threading.Thread(target=writer, args=(store_b, "b"))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    # The survivor is one writer's final-ish snapshot, fully intact.
    final = FileCheckpointStore(path).load()
    assert final is not None
    assert final.payload["writer"] in ("a", "b")
    assert final.payload["i"] == final.iteration
    # No quarantine happened and no temp files were left behind.
    leftovers = [name for name in os.listdir(tmp_path)
                 if name.endswith(".corrupt") or ".ckpt.tmp" in name]
    assert leftovers == []
    assert store_a.io_retries == 0
    assert store_b.io_retries == 0
