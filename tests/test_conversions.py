"""Matrix-representation conversion tests (repro.rf.conversions).

The backbone: every conversion must round-trip, and the pairwise
compositions must commute (S->Y->ABCD == S->ABCD).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.rf.conversions as cv


def _random_s(seed, n_freq=3):
    """A well-conditioned random passive-ish S matrix batch."""
    rng = np.random.default_rng(seed)
    s = 0.4 * (
        rng.standard_normal((n_freq, 2, 2))
        + 1j * rng.standard_normal((n_freq, 2, 2))
    ) / np.sqrt(2)
    return s


seeds = st.integers(min_value=0, max_value=10_000)


class TestRoundTrips:
    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_s_z_roundtrip(self, seed):
        s = _random_s(seed)
        np.testing.assert_allclose(cv.z_to_s(cv.s_to_z(s)), s, atol=1e-10)

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_s_y_roundtrip(self, seed):
        s = _random_s(seed)
        np.testing.assert_allclose(cv.y_to_s(cv.s_to_y(s)), s, atol=1e-10)

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_s_abcd_roundtrip(self, seed):
        s = _random_s(seed)
        np.testing.assert_allclose(
            cv.abcd_to_s(cv.s_to_abcd(s)), s, atol=1e-10
        )

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_s_t_roundtrip(self, seed):
        s = _random_s(seed)
        np.testing.assert_allclose(cv.t_to_s(cv.s_to_t(s)), s, atol=1e-10)

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_z_y_inverse(self, seed):
        z = cv.s_to_z(_random_s(seed))
        np.testing.assert_allclose(cv.y_to_z(cv.z_to_y(z)), z, rtol=1e-9)

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_abcd_via_y_equals_direct(self, seed):
        s = _random_s(seed)
        direct = cv.s_to_abcd(s)
        via_y = cv.y_to_abcd(cv.s_to_y(s))
        np.testing.assert_allclose(via_y, direct, rtol=1e-8, atol=1e-10)

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_abcd_via_z_equals_direct(self, seed):
        s = _random_s(seed)
        direct = cv.s_to_abcd(s)
        via_z = cv.z_to_abcd(cv.s_to_z(s))
        np.testing.assert_allclose(via_z, direct, rtol=1e-8, atol=1e-10)


class TestKnownNetworks:
    def test_series_impedance_abcd(self):
        # Series Z: ABCD = [[1, Z], [0, 1]].
        z = 25.0 + 10.0j
        abcd = np.array([[[1.0, z], [0.0, 1.0]]], dtype=complex)
        s = cv.abcd_to_s(abcd, z0=50.0)
        expected_s11 = z / (z + 100.0)
        assert s[0, 0, 0] == pytest.approx(expected_s11)
        assert s[0, 0, 1] == pytest.approx(s[0, 1, 0])

    def test_matched_thru(self):
        abcd = np.array([[[1.0, 0.0], [0.0, 1.0]]], dtype=complex)
        s = cv.abcd_to_s(abcd)
        assert s[0, 0, 0] == pytest.approx(0.0)
        assert s[0, 1, 0] == pytest.approx(1.0)

    def test_matched_load_z(self):
        # S = 0 corresponds to Z = z0 * identity... for a 2x2 S=0:
        z = cv.s_to_z(np.zeros((1, 2, 2), dtype=complex), z0=50.0)
        np.testing.assert_allclose(z[0], 50.0 * np.eye(2))

    def test_t_cascade_is_matrix_product(self):
        s_a = _random_s(1)
        s_b = _random_s(2)
        t_total = cv.s_to_t(s_a) @ cv.s_to_t(s_b)
        s_total = cv.t_to_s(t_total)
        # Validate against ABCD cascading, an independent composition law.
        abcd_total = cv.s_to_abcd(s_a) @ cv.s_to_abcd(s_b)
        np.testing.assert_allclose(
            s_total, cv.abcd_to_s(abcd_total), rtol=1e-8, atol=1e-10
        )

    def test_renormalize_identity(self):
        s = _random_s(5)
        np.testing.assert_allclose(
            cv.renormalize_s(s, 50.0, 50.0), s, atol=1e-12
        )

    def test_renormalize_roundtrip(self):
        s = _random_s(6)
        back = cv.renormalize_s(cv.renormalize_s(s, 50.0, 75.0), 75.0, 50.0)
        np.testing.assert_allclose(back, s, atol=1e-10)

    def test_reciprocal_abcd_determinant_one(self):
        # A reciprocal S (S12 == S21) must give det(ABCD) == 1.
        s = _random_s(7)
        s[:, 0, 1] = s[:, 1, 0]
        abcd = cv.s_to_abcd(s)
        det = abcd[:, 0, 0] * abcd[:, 1, 1] - abcd[:, 0, 1] * abcd[:, 1, 0]
        np.testing.assert_allclose(det, 1.0, rtol=1e-9)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            cv.s_to_z(np.zeros((3, 2, 3)))

    def test_two_port_only_for_abcd(self):
        with pytest.raises(ValueError):
            cv.s_to_abcd(np.zeros((1, 3, 3)))

    def test_nport_z_roundtrip(self):
        rng = np.random.default_rng(0)
        s = 0.3 * (rng.standard_normal((2, 4, 4))
                   + 1j * rng.standard_normal((2, 4, 4)))
        np.testing.assert_allclose(cv.z_to_s(cv.s_to_z(s)), s, atol=1e-10)
