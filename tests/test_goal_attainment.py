"""Goal-attainment and scalarization tests (repro.optimize)."""

import numpy as np
import pytest

from repro.optimize.goal_attainment import (
    MultiObjectiveProblem,
    goal_attainment_improved,
    goal_attainment_standard,
)
from repro.optimize.scalarization import epsilon_constraint, weighted_sum


def convex_biobjective():
    """f1 = |x - (1,0)|^2, f2 = |x + (1,0)|^2: Pareto set is the segment
    x in [-1, 1] x {0}."""
    return MultiObjectiveProblem(
        objectives=lambda x: np.array([
            (x[0] - 1) ** 2 + x[1] ** 2,
            (x[0] + 1) ** 2 + x[1] ** 2,
        ]),
        n_objectives=2,
        lower=np.array([-3.0, -3.0]),
        upper=np.array([3.0, 3.0]),
    )


def constrained_problem():
    """Same objectives but x0 >= 0.25 required."""
    base = convex_biobjective()
    return MultiObjectiveProblem(
        objectives=base.objectives,
        n_objectives=2,
        lower=base.lower,
        upper=base.upper,
        constraints=lambda x: np.array([0.25 - x[0]]),
    )


def nonconvex_biobjective():
    """A classic nonconvex front (Fonseca-Fleming style, 1-D)."""

    def objectives(x):
        t = x[0]
        f1 = 1 - np.exp(-((t - 1) ** 2))
        f2 = 1 - np.exp(-((t + 1) ** 2))
        return np.array([f1, f2])

    return MultiObjectiveProblem(
        objectives=objectives,
        n_objectives=2,
        lower=np.array([-2.0]),
        upper=np.array([2.0]),
    )


class TestProblemValidation:
    def test_bounds_must_match(self):
        with pytest.raises(ValueError):
            MultiObjectiveProblem(lambda x: x, 2, np.zeros(2), np.ones(3))

    def test_needs_two_objectives(self):
        with pytest.raises(ValueError):
            MultiObjectiveProblem(lambda x: x, 1, np.zeros(2), np.ones(2))

    def test_default_objective_names(self):
        problem = convex_biobjective()
        assert problem.objective_names == ("f1", "f2")


class TestStandardGoalAttainment:
    def test_balanced_goals_yield_symmetric_point(self):
        problem = convex_biobjective()
        result = goal_attainment_standard(problem, goals=[1.0, 1.0])
        # The symmetric Pareto point is x = (0, 0), f = (1, 1), gamma = 0.
        np.testing.assert_allclose(result.x, 0.0, atol=1e-4)
        assert result.gamma == pytest.approx(0.0, abs=1e-6)

    def test_generous_goals_overattained(self):
        problem = convex_biobjective()
        result = goal_attainment_standard(problem, goals=[3.0, 3.0])
        assert result.gamma < 0.0  # both goals exceeded

    def test_goal_shape_checked(self):
        with pytest.raises(ValueError):
            goal_attainment_standard(convex_biobjective(), goals=[1.0])

    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError):
            goal_attainment_standard(convex_biobjective(), goals=[1.0, 1.0],
                                     weights=[1.0, -1.0])

    def test_constraints_respected(self):
        problem = constrained_problem()
        result = goal_attainment_standard(problem, goals=[1.0, 1.0])
        assert result.x[0] >= 0.25 - 1e-6
        assert result.constraint_violation <= 1e-6

    def test_nfev_counted(self):
        problem = convex_biobjective()
        result = goal_attainment_standard(problem, goals=[1.0, 1.0])
        assert result.nfev > 0


class TestImprovedGoalAttainment:
    def test_reaches_pareto_front(self):
        problem = convex_biobjective()
        result = goal_attainment_improved(problem, goals=[1.0, 1.0],
                                          seed=0)
        # On the Pareto set: x1 = 0 and x0 in [-1, 1].
        assert abs(result.x[1]) < 1e-3
        assert -1.001 <= result.x[0] <= 1.001

    def test_tightening_pushes_past_timid_goals(self):
        # Goals far inside the attainable region: the standard method
        # stops at gamma << 0 but a point dominated by the front edge;
        # the improved method's tightening keeps improving objectives.
        problem = convex_biobjective()
        improved = goal_attainment_improved(problem, goals=[4.0, 4.0],
                                            seed=1, tighten_rounds=3)
        # Must end on the Pareto front (f1 + f2 >= 2, equality on front
        # only at x=(0,0); general check: point not dominated by the
        # symmetric solution with margin).
        f_sum = improved.objectives.sum()
        assert f_sum <= 2.3  # near the front, not hovering at goals

    def test_constraints_respected(self):
        problem = constrained_problem()
        result = goal_attainment_improved(problem, goals=[1.0, 1.0],
                                          seed=0)
        assert result.constraint_violation <= 1e-6
        assert result.x[0] >= 0.25 - 1e-6

    def test_handles_nonconvex_front(self):
        problem = nonconvex_biobjective()
        result = goal_attainment_improved(problem, goals=[0.6, 0.6],
                                          seed=0)
        # Balanced goals land mid-front (t ~ 0), which the weighted sum
        # cannot reach on a nonconvex front.
        assert abs(result.x[0]) < 0.3

    def test_goal_shape_checked(self):
        with pytest.raises(ValueError):
            goal_attainment_improved(convex_biobjective(), goals=[1.0])


class TestScalarizationBaselines:
    def test_weighted_sum_on_convex_problem(self):
        problem = convex_biobjective()
        result = weighted_sum(problem, [1.0, 1.0], seed=0)
        np.testing.assert_allclose(result.x, 0.0, atol=1e-4)
        assert result.success

    def test_weighted_sum_misses_nonconvex_middle(self):
        # On the nonconvex front, any weight vector lands near an
        # extreme, never mid-front.
        problem = nonconvex_biobjective()
        result = weighted_sum(problem, [1.0, 1.0], seed=0, n_starts=6)
        assert abs(result.x[0]) > 0.6

    def test_weighted_sum_validation(self):
        with pytest.raises(ValueError):
            weighted_sum(convex_biobjective(), [1.0])
        with pytest.raises(ValueError):
            weighted_sum(convex_biobjective(), [1.0, -2.0])

    def test_epsilon_constraint_respects_bound(self):
        problem = convex_biobjective()
        result = epsilon_constraint(problem, primary_index=0,
                                    epsilons=[np.inf, 1.0], seed=0)
        assert result.objectives[1] <= 1.0 + 1e-6
        # Minimizing f1 subject to f2 <= 1 lands at x = (0, 0).
        np.testing.assert_allclose(result.x, 0.0, atol=1e-3)

    def test_epsilon_constraint_index_validated(self):
        with pytest.raises(ValueError):
            epsilon_constraint(convex_biobjective(), primary_index=5,
                               epsilons=[1.0, 1.0])

    def test_epsilon_constraint_traces_front(self):
        problem = convex_biobjective()
        points = []
        for eps in (0.5, 1.0, 2.0):
            result = epsilon_constraint(problem, 0, [np.inf, eps], seed=0)
            points.append(result.objectives)
        f1_values = [p[0] for p in points]
        # Tighter epsilon on f2 forces larger f1.
        assert f1_values[0] > f1_values[1] > f1_values[2]
