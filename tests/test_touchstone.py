"""Touchstone I/O tests (repro.rf.touchstone)."""

import io

import numpy as np
import pytest

from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoiseParameters
from repro.rf.touchstone import (
    TouchstoneData,
    read_touchstone,
    write_touchstone,
)
from repro.rf.twoport import attenuator, transmission_line


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1e9, 2e9, 5)


class TestRoundTrip:
    def test_sparams_roundtrip(self, fg):
        network = transmission_line(fg, 65.0, 0.1 + 0.9j)
        text = write_touchstone(TouchstoneData(network=network))
        parsed = read_touchstone(text)
        np.testing.assert_allclose(parsed.network.s, network.s, atol=1e-8)
        np.testing.assert_allclose(parsed.network.frequency.f_hz, fg.f_hz)
        assert parsed.noise is None

    def test_noise_roundtrip(self, fg):
        network = attenuator(fg, 3.0)
        noise = NoiseParameters.from_nfmin_db(
            np.linspace(0.5, 1.0, 5),
            np.linspace(8.0, 12.0, 5),
            0.3 * np.exp(1j * np.linspace(0.1, 1.0, 5)),
        )
        text = write_touchstone(TouchstoneData(network=network, noise=noise))
        parsed = read_touchstone(text)
        assert parsed.noise is not None
        np.testing.assert_allclose(
            parsed.noise.nfmin_db, noise.nfmin_db, atol=1e-5
        )
        np.testing.assert_allclose(parsed.noise.rn, noise.rn, rtol=1e-5)
        np.testing.assert_allclose(
            parsed.noise.gamma_opt(50.0), noise.gamma_opt(50.0), atol=1e-5
        )

    def test_write_to_file_object(self, fg):
        network = attenuator(fg, 6.0)
        buffer = io.StringIO()
        write_touchstone(TouchstoneData(network=network), buffer)
        parsed = read_touchstone(buffer.getvalue())
        np.testing.assert_allclose(parsed.network.s, network.s, atol=1e-8)

    def test_write_read_file(self, fg, tmp_path):
        network = attenuator(fg, 2.0)
        path = tmp_path / "pad.s2p"
        write_touchstone(TouchstoneData(network=network), str(path))
        parsed = read_touchstone(str(path))
        np.testing.assert_allclose(parsed.network.s, network.s, atol=1e-8)


class TestFormats:
    def test_ma_format(self):
        text = (
            "# GHz S MA R 50\n"
            "1.0 0.5 45 0.9 -30 0.1 60 0.4 10\n"
        )
        parsed = read_touchstone(text)
        s = parsed.network.s[0]
        assert abs(s[0, 0]) == pytest.approx(0.5)
        assert np.angle(s[0, 0], deg=True) == pytest.approx(45.0)
        # Column order is S11 S21 S12 S22.
        assert abs(s[1, 0]) == pytest.approx(0.9)
        assert abs(s[0, 1]) == pytest.approx(0.1)
        assert abs(s[1, 1]) == pytest.approx(0.4)

    def test_db_format(self):
        text = (
            "# MHz S DB R 50\n"
            "1500 -6.0206 0 0 0 0 0 0 0\n"
        )
        parsed = read_touchstone(text)
        assert parsed.network.frequency.f_hz[0] == pytest.approx(1.5e9)
        assert abs(parsed.network.s[0, 0, 0]) == pytest.approx(0.5, rel=1e-4)

    def test_custom_reference_impedance(self):
        text = "# GHz S RI R 75\n1.0 0 0 1 0 1 0 0 0\n"
        parsed = read_touchstone(text)
        assert parsed.network.z0 == 75.0

    def test_comments_ignored(self):
        text = (
            "! header comment\n"
            "# GHz S RI R 50\n"
            "1.0 0 0 1 0 1 0 0 0 ! inline comment\n"
        )
        parsed = read_touchstone(text)
        assert len(parsed.network.frequency) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            read_touchstone("! nothing here\n")

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError):
            read_touchstone("# GHz S RI R 50\n1.0 0 0 1\n")

    @pytest.mark.parametrize("data_format", ["RI", "MA", "DB"])
    def test_all_formats_round_trip_bit_close(self, fg, data_format):
        network = transmission_line(fg, 65.0, 0.1 + 0.9j)
        text = write_touchstone(TouchstoneData(network=network),
                                data_format=data_format)
        assert f"# GHz S {data_format} R 50" in text
        parsed = read_touchstone(text)
        # 17 significant digits: the round trip is double-precision
        # clean, not just eyeball-close.
        np.testing.assert_allclose(parsed.network.s, network.s,
                                   rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(parsed.network.frequency.f_hz,
                                   fg.f_hz, rtol=1e-14)

    def test_db_write_handles_exact_zero_entry(self, fg):
        network = attenuator(fg, 3.0)
        s = network.s.copy()
        s[:, 0, 0] = 0.0  # |S11| = 0 would be -inf dB unclamped
        zeroed = type(network)(network.frequency, s, z0=network.z0)
        text = write_touchstone(TouchstoneData(network=zeroed),
                                data_format="DB")
        parsed = read_touchstone(text)
        assert np.all(np.abs(parsed.network.s[:, 0, 0]) < 1e-200)

    def test_unknown_write_format_rejected(self, fg):
        network = attenuator(fg, 3.0)
        with pytest.raises(ValueError):
            write_touchstone(TouchstoneData(network=network),
                             data_format="XY")

    def test_noise_frequencies_use_header_unit_scale(self):
        """Regression: a MHz-unit file's noise block must be read in
        MHz too, not assumed to be GHz."""
        text = (
            "# MHz S RI R 50\n"
            "1000 0 0 1 0 1 0 0 0\n"
            "2000 0 0 1 0 1 0 0 0\n"
            "! noise parameters\n"
            "1000 0.5 0.3 20 0.15\n"
            "2000 1.0 0.2 60 0.22\n"
        )
        parsed = read_touchstone(text)
        np.testing.assert_allclose(parsed.network.frequency.f_hz,
                                   [1e9, 2e9])
        assert parsed.noise is not None
        # On-grid noise rows: read verbatim, no resampling distortion.
        np.testing.assert_allclose(parsed.noise.nfmin_db, [0.5, 1.0])
        np.testing.assert_allclose(parsed.noise.rn, [7.5, 11.0])

    def test_trailing_noise_block_with_fewer_rows_is_resampled(self, fg):
        """A short noise block must not be dropped or mis-assigned."""
        network = attenuator(fg, 3.0)
        body = write_touchstone(TouchstoneData(network=network))
        # Three noise rows against a five-point S grid.
        body += "1.0 0.5 0.3 20 0.15\n1.5 0.7 0.25 40 0.18\n"
        body += "2.0 1.0 0.2 60 0.22\n"
        parsed = read_touchstone(body)
        assert parsed.noise is not None
        assert len(parsed.noise) == len(fg)
        assert parsed.noise.nfmin_db[0] == pytest.approx(0.5, abs=1e-6)
        assert parsed.noise.nfmin_db[2] == pytest.approx(0.7, abs=1e-6)
        assert parsed.noise.nfmin_db[-1] == pytest.approx(1.0, abs=1e-6)

    def test_s_row_after_noise_block_rejected(self):
        text = (
            "# GHz S RI R 50\n"
            "1.0 0 0 1 0 1 0 0 0\n"
            "1.0 0.5 0.3 20 0.15\n"
            "2.0 0 0 1 0 1 0 0 0\n"
        )
        with pytest.raises(ValueError, match="after the noise block"):
            read_touchstone(text)

    def test_odd_column_count_rejected_with_row_number(self):
        text = (
            "# GHz S RI R 50\n"
            "1.0 0 0 1 0 1 0 0 0\n"
            "2.0 0 0 1 0 1 0\n"
        )
        with pytest.raises(ValueError, match="row 2"):
            read_touchstone(text)

    def test_truncated_noise_block_reports_extrapolation(self, fg):
        """Noise data covering only part of the S grid must not be
        silently clamp-extended over the uncharacterized band."""
        from repro.guards.contracts import ContractViolation, GuardWarning
        from repro.guards.modes import guard_mode

        network = attenuator(fg, 3.0)
        body = write_touchstone(TouchstoneData(network=network))
        body += "! noise parameters\n"
        # Noise measured over 1.0-1.5 GHz only; the S grid reaches 2.0.
        body += "1.0 0.5 0.3 20 0.15\n1.5 0.7 0.25 40 0.18\n"
        with guard_mode("strict"):
            with pytest.raises(ContractViolation,
                               match="outside the measured noise band"):
                read_touchstone(body)
        with guard_mode("warn"):
            with pytest.warns(GuardWarning,
                              match="outside the measured noise band"):
                parsed = read_touchstone(body)
        # Warn mode still returns the clamped values.
        assert parsed.noise is not None
        assert parsed.noise.nfmin_db[-1] == pytest.approx(0.7, abs=1e-6)
        with guard_mode("off"):
            parsed = read_touchstone(body)
        assert parsed.noise is not None

    def test_noise_on_other_grid_is_resampled(self, fg):
        network = attenuator(fg, 3.0)
        body = write_touchstone(TouchstoneData(network=network))
        body += "! noise parameters\n"
        # Two noise rows bracketing the S grid.
        body += "1.0 0.5 0.3 20 0.15\n2.0 1.0 0.2 60 0.22\n"
        parsed = read_touchstone(body)
        assert parsed.noise is not None
        assert len(parsed.noise) == len(fg)
        assert parsed.noise.nfmin_db[0] == pytest.approx(0.5, abs=1e-6)
        assert parsed.noise.nfmin_db[-1] == pytest.approx(1.0, abs=1e-6)
