"""Netlist data-model tests (repro.analysis.netlist)."""

import numpy as np
import pytest

from repro.analysis.netlist import Circuit, TransmissionLineElement


class TestCircuitConstruction:
    def test_nodes_registered_in_order(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 50.0)
        circuit.capacitor("C1", "b", "c", 1e-12)
        assert circuit.node_names == ["a", "b", "c"]

    def test_ground_aliases_not_registered(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "gnd", 50.0)
        circuit.resistor("R2", "b", "0", 50.0)
        assert circuit.node_names == ["a", "b"]
        assert circuit.node_index("gnd") == -1
        assert circuit.node_index("0") == -1

    def test_duplicate_element_name_rejected(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 50.0)
        with pytest.raises(ValueError):
            circuit.resistor("R1", "b", "c", 75.0)

    def test_duplicate_port_name_rejected(self):
        circuit = Circuit()
        circuit.port("p1", "a")
        with pytest.raises(ValueError):
            circuit.port("p1", "b")

    def test_vccs_registers_all_nodes(self):
        circuit = Circuit()
        circuit.vccs("G1", "out_p", "out_n", "ctl_p", "ctl_n", 0.1)
        assert set(circuit.node_names) == {"out_p", "out_n", "ctl_p",
                                           "ctl_n"}

    def test_yblock_registers_nodes(self):
        circuit = Circuit()
        circuit.y_block("X1", ("n1", "n2", "n3"),
                        lambda f: np.zeros((3, 3), dtype=complex))
        assert circuit.node_names == ["n1", "n2", "n3"]

    def test_builder_chaining(self):
        circuit = (
            Circuit("chained")
            .resistor("R1", "a", "b", 10.0)
            .capacitor("C1", "b", "gnd", 1e-12)
            .inductor("L1", "a", "gnd", 1e-9)
            .port("p1", "a")
        )
        assert len(circuit.elements) == 3
        assert len(circuit.ports) == 1


class TestElementValidation:
    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().resistor("R1", "a", "b", -5.0)

    def test_zero_capacitance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().capacitor("C1", "a", "b", 0.0)

    def test_zero_inductance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().inductor("L1", "a", "b", 0.0)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            Circuit().resistor("R1", "a", "b", 10.0, temperature=-3.0)

    def test_nonpositive_port_z0_rejected(self):
        with pytest.raises(ValueError):
            Circuit().port("p1", "a", z0=0.0)


class TestTransmissionLineElement:
    def test_y_matrix_reciprocal_symmetric(self):
        element = TransmissionLineElement("T1", "a", "b", 75.0, 0.2 + 1.1j)
        y = element.y_matrix(1e9)
        assert y[0, 1] == pytest.approx(y[1, 0])
        assert y[0, 0] == pytest.approx(y[1, 1])

    def test_zero_length_rejected(self):
        element = TransmissionLineElement("T1", "a", "b", 75.0, 0.0)
        with pytest.raises(ValueError):
            element.y_matrix(1e9)

    def test_callable_parameters(self):
        element = TransmissionLineElement(
            "T1", "a", "b",
            z_characteristic=lambda f: 75.0,
            gamma_length=lambda f: 1j * 2 * np.pi * f / 3e8 * 0.01,
        )
        y1 = element.y_matrix(1.0e9)
        y2 = element.y_matrix(2.0e9)
        assert not np.allclose(y1, y2)
