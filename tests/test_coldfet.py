"""Cold-FET extrinsic-extraction tests (repro.optimize.extraction).

At Vds = 0 the individual access resistances are famously degenerate
with the channel conductance (one reason Dambrine's method sweeps gate
bias), so the assertions target the *identifiable* quantities: all
inductances, the pad capacitances, and the conserved total resistance
of the drain path.
"""

import numpy as np
import pytest

from repro.devices.datasets import BiasPoint
from repro.devices.reference import ReferencePHEMT
from repro.optimize.extraction import extract_extrinsics_cold_fet
from repro.rf.frequency import FrequencyGrid


@pytest.fixture(scope="module")
def cold_result():
    device = ReferencePHEMT(seed=9)
    fg = FrequencyGrid.linear(0.5e9, 6e9, 23)
    record = device.sparam_record(fg, BiasPoint(0.55, 0.0),
                                  error_magnitude=0.002)
    result = extract_extrinsics_cold_fet(record, seed=1)
    return device, result


class TestColdFet:
    def test_fit_quality(self, cold_result):
        __, result = cold_result
        assert result.rms_error < 0.01
        assert result.converged

    def test_inductances_recovered(self, cold_result):
        device, result = cold_result
        true = device.small_signal.extrinsics
        assert result.extrinsics.lg == pytest.approx(true.lg, rel=0.10)
        assert result.extrinsics.ld == pytest.approx(true.ld, rel=0.10)
        assert result.extrinsics.ls == pytest.approx(true.ls, rel=0.15)

    def test_pad_capacitances_recovered(self, cold_result):
        device, result = cold_result
        true = device.small_signal.extrinsics
        assert result.extrinsics.cpg == pytest.approx(true.cpg, rel=0.10)
        assert result.extrinsics.cpd == pytest.approx(true.cpd, rel=0.10)

    def test_drain_path_resistance_conserved(self, cold_result):
        # rd + rs + 1/g_channel is identifiable even though the split
        # between the three is not.
        device, result = cold_result
        true = device.small_signal.extrinsics
        fitted_total = (
            result.extrinsics.rd
            + result.extrinsics.rs
            + 1.0 / result.channel_conductance
        )
        true_total = (
            true.rd + true.rs + 1.0 / float(device.dc.gds(0.55, 0.0))
        )
        assert fitted_total == pytest.approx(true_total, rel=0.05)

    def test_channel_conductance_positive(self, cold_result):
        __, result = cold_result
        assert result.channel_conductance > 0
