"""DC model tests (repro.devices.dcmodels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.dcmodels import (
    MODEL_REGISTRY,
    AngelovModel,
    CurticeCubic,
    CurticeQuadratic,
    StatzModel,
    TomModel,
)

ALL_MODELS = [CurticeQuadratic, CurticeCubic, StatzModel, TomModel,
              AngelovModel]


@pytest.mark.parametrize("model_class", ALL_MODELS)
class TestCommonBehaviour:
    def test_zero_current_at_zero_vds(self, model_class):
        model = model_class()
        assert model.ids(0.5, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_current_monotonic_in_vds(self, model_class):
        # The Curtice cubic's Vds-dependent drive lets Ids sag by a few
        # ppm at high Vds; allow that known model property.
        model = model_class()
        vds = np.linspace(0.0, 4.0, 40)
        ids = model.ids(0.55, vds)
        assert np.all(np.diff(ids) >= -1e-4 * np.max(ids))

    def test_gm_positive_in_saturation(self, model_class):
        model = model_class()
        assert float(model.gm(0.55, 3.0)) > 0

    def test_gds_nonnegative_in_saturation(self, model_class):
        model = model_class()
        assert float(model.gds(0.55, 3.0)) >= -1e-9

    def test_vectorized_over_grid(self, model_class):
        model = model_class()
        vgs = np.linspace(0.3, 0.7, 4)[:, None]
        vds = np.linspace(0.1, 4.0, 5)[None, :]
        ids = model.ids(vgs, vds)
        assert ids.shape == (4, 5)
        assert np.all(np.isfinite(ids))

    def test_parameter_vector_roundtrip(self, model_class):
        model = model_class()
        rebuilt = model_class.from_vector(model.parameter_vector())
        assert rebuilt == model

    def test_from_vector_shape_checked(self, model_class):
        with pytest.raises(ValueError):
            model_class.from_vector(np.zeros(99))

    def test_bounds_cover_defaults(self, model_class):
        lower, upper = model_class.bounds_arrays()
        defaults = model_class().parameter_vector()
        assert np.all(defaults >= lower)
        assert np.all(defaults <= upper)

    def test_replaced(self, model_class):
        model = model_class()
        name = model_class.parameter_names()[0]
        changed = model.replaced(**{name: getattr(model, name) * 1.01})
        assert getattr(changed, name) != getattr(model, name)


class TestThresholdModels:
    @pytest.mark.parametrize("model_class",
                             [CurticeQuadratic, StatzModel, TomModel])
    def test_no_current_below_threshold(self, model_class):
        model = model_class()
        assert model.ids(model.vto - 0.2, 3.0) == pytest.approx(0.0,
                                                                abs=1e-15)

    def test_curtice_square_law(self):
        model = CurticeQuadratic(beta=0.2, vto=0.3, lambda_=0.0, alpha=50.0)
        # Deep saturation: Ids ~ beta (Vgs-Vto)^2.
        assert float(model.ids(0.8, 3.0)) == pytest.approx(
            0.2 * 0.25, rel=1e-4
        )

    def test_statz_compression(self):
        # The b parameter compresses the drive at high overdrive.
        soft = StatzModel(b=5.0)
        hard = StatzModel(b=0.0)
        assert float(soft.ids(0.8, 3.0)) < float(hard.ids(0.8, 3.0))

    def test_tom_drain_feedback_reduces_current(self):
        base = TomModel(delta=0.0)
        compressed = TomModel(delta=1.0)
        assert float(compressed.ids(0.6, 3.0)) < float(base.ids(0.6, 3.0))


class TestAngelov:
    def test_peak_gm_near_vpk(self):
        model = AngelovModel(p2=0.0, p3=0.0)
        vgs = np.linspace(0.0, 1.0, 201)
        gm = model.gm(vgs, 3.0)
        v_at_peak = vgs[np.argmax(gm)]
        assert v_at_peak == pytest.approx(model.vpk, abs=0.02)

    def test_current_at_vpk_is_ipk_scaled(self):
        model = AngelovModel(lambda_=0.0, alpha=50.0)
        # tanh(psi)=0 at vpk: Ids = Ipk in deep saturation.
        assert float(model.ids(model.vpk, 3.0)) == pytest.approx(
            model.ipk, rel=1e-3
        )

    def test_saturates_at_2ipk(self):
        model = AngelovModel(lambda_=0.0, alpha=50.0)
        assert float(model.ids(2.0, 3.0)) <= 2.0 * model.ipk * 1.001

    @given(st.floats(min_value=-1.0, max_value=1.5))
    @settings(max_examples=30, deadline=None)
    def test_current_never_negative(self, vgs):
        model = AngelovModel()
        assert float(model.ids(vgs, 2.0)) >= 0.0


class TestRegistry:
    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {
            "curtice2", "curtice3", "statz", "tom", "angelov"
        }

    def test_registry_values_are_classes(self):
        for model_class in MODEL_REGISTRY.values():
            assert issubclass(model_class, tuple(ALL_MODELS)[0].__mro__[1])
