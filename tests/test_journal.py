"""Flight-recorder journal, run registry, regression diff, and CLI."""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.obs.cli import main as cli_main
from repro.obs.compare import (
    DEFAULT_TOLERANCES,
    RunSummary,
    compare_runs,
    compare_summaries,
    format_diff,
    load_summary,
    summarize_journal,
)
from repro.obs.journal import (
    JournalError,
    RunJournal,
    config_fingerprint,
    emit,
    get_journal,
    read_events,
    replay_journal,
    set_journal,
)
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.runs import RunRegistry, recorded_run
from repro.obs.telemetry import GenerationRecord
from repro.obs.tracer import Tracer, set_tracer
from repro.optimize.faults import FaultInjector
from repro.optimize.metaheuristics import differential_evolution


@pytest.fixture()
def fresh_globals():
    tracer = Tracer(enabled=False)
    metrics = Metrics()
    old_tracer = set_tracer(tracer)
    old_metrics = set_metrics(metrics)
    old_journal = set_journal(None)
    yield tracer, metrics
    set_tracer(old_tracer)
    set_metrics(old_metrics)
    set_journal(old_journal)


def _record(generation, best=1.0, algorithm="de", nfev=None):
    return GenerationRecord(
        algorithm=algorithm, generation=generation,
        nfev=nfev if nfev is not None else (generation + 1) * 10,
        best=float(best), mean=float(best) + 1.0, spread=0.1,
        wall_time_s=0.01,
    )


def rosenbrock(x):
    x = np.asarray(x, dtype=float)
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2
                        + (1.0 - x[:-1]) ** 2))


class KillAfter:
    """Objective wrapper that raises KeyboardInterrupt after n calls."""

    def __init__(self, objective, n_calls):
        self.objective = objective
        self.n_calls = int(n_calls)
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls > self.n_calls:
            raise KeyboardInterrupt
        return self.objective(x)


# ----------------------------------------------------------------------
# RunJournal basics
# ----------------------------------------------------------------------

class TestRunJournal:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(str(path), run_id="r1") as journal:
            journal.append("custom", value=3)
            journal.append("custom", value=4)
        events, truncated, n_corrupt = read_events(str(path))
        assert [e["event"] for e in events] == ["custom", "custom"]
        assert [e["seq"] for e in events] == [1, 2]
        assert not truncated and n_corrupt == 0

    def test_run_start_header(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GUARDS", "warn")
        path = tmp_path / "journal.jsonl"
        with RunJournal(str(path), run_id="hdr") as journal:
            journal.run_start(config={"seed": 7}, seeds={"opt": 7})
        header = read_events(str(path))[0][0]
        assert header["event"] == "run_start"
        assert header["run_id"] == "hdr"
        assert header["env"]["REPRO_GUARDS"] == "warn"
        assert header["config_fingerprint"] == config_fingerprint(
            {"seed": 7})
        assert header["seeds"] == {"opt": 7}
        assert header["pid"] == os.getpid()

    def test_config_fingerprint_is_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})
        assert config_fingerprint(None) is None
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_append_numpy_values(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(str(path)) as journal:
            journal.append("np", arr=np.array([1.0, 2.0]),
                           scalar=np.float64(3.5))
        event = read_events(str(path))[0][0]
        assert event["arr"] == [1.0, 2.0]
        assert event["scalar"] == 3.5

    def test_closed_journal_raises(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append("late")

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append("one")
        with RunJournal(path) as journal:
            journal.append("two")
        events = read_events(path)[0]
        assert [e["seq"] for e in events] == [1, 2]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append("whole")
        with open(path, "ab") as handle:
            handle.write(b'{"seq":2,"event":"torn...')
        journal = RunJournal(path)
        assert journal.repaired_partial_line
        journal.append("after")
        journal.close()
        events, truncated, n_corrupt = read_events(path)
        assert [e["event"] for e in events] == ["whole", "after"]
        assert not truncated and n_corrupt == 0

    def test_generation_events_and_periodic_snapshot(self, tmp_path,
                                                     fresh_globals):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, snapshot_every=3) as journal:
            for g in range(7):
                journal(_record(g))
            assert len(journal) == 7
            assert journal.is_contiguous()
        replay = replay_journal(path)
        counts = replay.counts()
        assert counts["generation"] == 7
        assert counts["snapshot"] == 2  # after generations 3 and 6

    def test_run_end_counts_generations(self, tmp_path, fresh_globals):
        _, metrics = fresh_globals
        metrics.inc("solver.calls", 5)
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal(_record(0))
            journal.run_end()
        end = replay_journal(path).run_end
        assert end["status"] == "completed"
        assert end["n_generations"] == 1
        assert end["counters"]["solver.calls"] == 5


# ----------------------------------------------------------------------
# replay + resume semantics
# ----------------------------------------------------------------------

class TestReplay:
    def test_resume_marker_truncates_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        for g in range(6):
            journal(_record(g))
        # Rewind to the state after generation 3 (a checkpoint), then
        # re-emit generations 4/5 as a resumed run would.
        state = {"records": [r.as_dict()
                             for r in journal.telemetry.records[:4]]}
        journal.restore(state)
        for g in range(4, 6):
            journal(_record(g))
        journal.close()
        replay = replay_journal(path)
        assert replay.n_resumes == 1
        assert replay.is_contiguous()
        assert [r.generation for r in replay.telemetry.records] == \
            list(range(6))

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append("a")
            journal.append("b")
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(lines[0])
            handle.write(b"garbage not json\n")
            handle.write(lines[1])
        events, truncated, n_corrupt = read_events(path)
        assert [e["event"] for e in events] == ["a", "b"]
        assert n_corrupt == 1 and not truncated

    def test_truncated_tail_reported(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append("a")
        with open(path, "ab") as handle:
            handle.write(b'{"seq":2,"ev')
        replay = replay_journal(path)
        assert replay.truncated_tail
        assert [e["event"] for e in replay.events] == ["a"]


# ----------------------------------------------------------------------
# the ambient emit hook
# ----------------------------------------------------------------------

class TestEmitHook:
    def test_emit_without_journal_is_noop(self, fresh_globals):
        assert get_journal() is None
        emit("orphan", x=1)  # must not raise

    def test_emit_routes_to_active_journal(self, tmp_path, fresh_globals):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        previous = set_journal(journal)
        try:
            emit("wired", n=2)
        finally:
            set_journal(previous)
        journal.close()
        events = read_events(path)[0]
        assert events[0]["event"] == "wired" and events[0]["n"] == 2

    def test_emit_on_closed_journal_warns_once(self, tmp_path,
                                               fresh_globals):
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        journal.close()
        previous = set_journal(journal)
        try:
            with pytest.warns(UserWarning, match="stopped recording"):
                emit("lost")
            # Second failure is silent — no warning spam.
            import warnings as _warnings
            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                emit("lost again")
        finally:
            set_journal(previous)

    def test_guard_violation_is_journaled(self, tmp_path, fresh_globals):
        from repro.guards import contracts, modes
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        previous = set_journal(journal)
        try:
            with modes.guard_mode("warn"):
                with pytest.warns(contracts.GuardWarning):
                    contracts.check_finite([1.0, float("nan")], "probe")
        finally:
            set_journal(previous)
        journal.close()
        violations = [e for e in read_events(path)[0]
                      if e["event"] == "guard_violation"]
        assert len(violations) == 1
        assert violations[0]["contract"] == "finite"

    def test_checkpoint_event_is_journaled(self, tmp_path, fresh_globals):
        from repro.optimize.checkpoint import MemoryCheckpointStore
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path)
        previous = set_journal(journal)
        try:
            differential_evolution(
                rosenbrock, [-2] * 2, [2] * 2, population_size=8,
                max_iterations=6, seed=1, tolerance=0.0,
                checkpoint_store=MemoryCheckpointStore(),
                checkpoint_every=2, on_generation=journal,
            )
        finally:
            set_journal(previous)
        journal.close()
        counts = replay_journal(path).counts()
        assert counts.get("checkpoint", 0) >= 2
        assert counts["generation"] >= 6


# ----------------------------------------------------------------------
# crash-safety: kill mid-generation, truncate the tail, resume
# ----------------------------------------------------------------------

class TestCrashSafety:
    def test_killed_and_resumed_run_replays_contiguously(self, tmp_path,
                                                         fresh_globals):
        root = str(tmp_path / "runs")
        registry = RunRegistry(root)
        lower, upper = [-2.0] * 3, [2.0] * 3
        kwargs = dict(population_size=10, max_iterations=20, seed=3,
                      tolerance=0.0)

        # Reference: uninterrupted, journaled run.
        ref = registry.create_run(run_id="ref")
        with ref.open_journal() as journal:
            journal.run_start(config={"seed": 3}, seeds={"seed": 3})
            reference = differential_evolution(
                rosenbrock, lower, upper, on_generation=journal, **kwargs)
            journal.run_end()

        # Hard kill mid-generation, checkpointing as it goes.
        run = registry.create_run(run_id="crash")
        store = run.checkpoint_store()
        killer = KillAfter(rosenbrock, 10 + 10 * 12 + 4)
        journal = run.open_journal()
        journal.run_start(config={"seed": 3}, seeds={"seed": 3})
        with pytest.raises(KeyboardInterrupt):
            differential_evolution(
                killer, lower, upper, on_generation=journal,
                checkpoint_store=store, checkpoint_every=3, **kwargs)
        # Simulate the power cut mid-append: no close(), and the last
        # line is torn in half.
        data = open(run.journal_path, "rb").read()
        with open(run.journal_path, "wb") as handle:
            handle.write(data[:-9])
        assert read_events(run.journal_path)[1]  # tail is torn

        # Resume into the SAME journal file.
        resumed = registry.load_run("crash")
        store2 = resumed.checkpoint_store()
        with resumed.open_journal() as journal2:
            assert journal2.repaired_partial_line
            result = differential_evolution(
                rosenbrock, lower, upper, on_generation=journal2,
                checkpoint_store=store2, resume=True, **kwargs)
            journal2.run_end()

        replay = replay_journal(resumed.journal_path)
        assert replay.n_resumes == 1
        assert not replay.truncated_tail
        assert replay.is_contiguous()
        generations = [r.generation for r in replay.telemetry.records]
        assert generations == sorted(set(generations))  # no duplicates

        reference_replay = replay_journal(ref.journal_path)
        ref_trace = [(r.generation, r.best)
                     for r in reference_replay.telemetry.records]
        crash_trace = [(r.generation, r.best)
                       for r in replay.telemetry.records]
        assert crash_trace == ref_trace  # bit-for-bit convergence story
        assert result.fun == reference.fun

        # And the regression diff of the two runs is clean.
        diff = compare_runs(ref.path, resumed.path)
        assert diff.ok, format_diff(diff)

    def test_faulty_run_killed_and_resumed_stays_contiguous(self, tmp_path,
                                                            fresh_globals):
        # The FaultInjector makes some evaluations blow up (absorbed as
        # inf fitness by the optimizer); the kill is still a hard
        # KeyboardInterrupt mid-generation.  The replayed journal must
        # come back contiguous and duplicate-free even though the
        # objective itself was misbehaving.
        registry = RunRegistry(str(tmp_path / "runs"))
        lower, upper = [-2.0] * 3, [2.0] * 3
        kwargs = dict(population_size=10, max_iterations=16, seed=5,
                      tolerance=0.0)

        run = registry.create_run(run_id="flaky")
        store = run.checkpoint_store()
        flaky = FaultInjector(rosenbrock, p_raise=0.05, seed=9)
        killer = KillAfter(flaky, 10 + 10 * 9 + 6)
        journal = run.open_journal()
        journal.run_start(config={"seed": 5}, seeds={"seed": 5})
        with pytest.raises(KeyboardInterrupt):
            differential_evolution(
                killer, lower, upper, on_generation=journal,
                checkpoint_store=store, checkpoint_every=2, **kwargs)
        data = open(run.journal_path, "rb").read()
        with open(run.journal_path, "wb") as handle:
            handle.write(data[:-7])

        resumed = registry.load_run("flaky")
        flaky2 = FaultInjector(rosenbrock, p_raise=0.05, seed=9)
        with resumed.open_journal() as journal2:
            differential_evolution(
                flaky2, lower, upper, on_generation=journal2,
                checkpoint_store=resumed.checkpoint_store(), resume=True,
                **kwargs)
            journal2.run_end()

        replay = replay_journal(resumed.journal_path)
        assert replay.n_resumes == 1
        assert replay.is_contiguous()
        generations = [r.generation for r in replay.telemetry.records]
        assert generations == sorted(set(generations))
        assert generations[-1] == 16  # init population + 16 iterations


# ----------------------------------------------------------------------
# run registry
# ----------------------------------------------------------------------

class TestRunRegistry:
    def test_create_list_load(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        run_a = registry.create_run(name="lna")
        run_b = registry.create_run(name="lna")
        assert run_a.run_id != run_b.run_id  # same-second collision
        assert set(registry.list_runs()) == {run_a.run_id, run_b.run_id}
        loaded = registry.load_run(run_a.run_id)
        assert loaded.path == run_a.path

    def test_load_unknown_run_lists_known(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.create_run(run_id="only")
        with pytest.raises(KeyError, match="only"):
            registry.load_run("missing")

    def test_env_override_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "custom"))
        registry = RunRegistry()
        run = registry.create_run(run_id="env")
        assert run.path.startswith(str(tmp_path / "custom"))

    def test_recorded_run_lifecycle(self, tmp_path, fresh_globals):
        root = str(tmp_path / "runs")
        with recorded_run(root, run_id="ok", config={"seed": 1},
                          seeds={"seed": 1}) as run:
            assert get_journal() is run.journal
            run.journal(_record(0))
        assert get_journal() is None
        assert os.path.exists(run.metrics_path)
        replay = replay_journal(run.journal_path)
        assert replay.run_start["config"] == {"seed": 1}
        assert replay.run_end["status"] == "completed"

    def test_recorded_run_failure_status(self, tmp_path, fresh_globals):
        root = str(tmp_path / "runs")
        with pytest.raises(RuntimeError, match="boom"):
            with recorded_run(root, run_id="bad") as run:
                raise RuntimeError("boom")
        end = replay_journal(run.journal_path).run_end
        assert end["status"] == "failed"
        assert "boom" in end["error"]

    def test_summary_of_run(self, tmp_path, fresh_globals):
        root = str(tmp_path / "runs")
        registry = RunRegistry(root)
        with recorded_run(registry, run_id="s") as run:
            for g in range(4):
                run.journal(_record(g, best=1.0 / (g + 1)))
        summary = registry.summarize_run("s")
        assert summary.n_generations == 4
        assert summary.final_best == pytest.approx(0.25)
        assert summary.status == "completed"


# ----------------------------------------------------------------------
# regression diff
# ----------------------------------------------------------------------

def _summary(**overrides) -> RunSummary:
    base = dict(
        run_id="x", source="x", status="completed", algorithms=["de"],
        n_generations=3, best_per_generation=[3.0, 2.0, 1.0],
        final_best=1.0, final_violation=0.0, total_nfev=100,
        n_failures=0, guard_violations=0.0, cache_hit_rate=0.5,
        wall_time_s=1.0, counters={},
    )
    base.update(overrides)
    return RunSummary(**base)


class TestCompare:
    def test_identical_runs_have_zero_regressions(self):
        diff = compare_summaries(_summary(), _summary())
        assert diff.ok and not diff.regressions

    def test_worse_final_best_regresses(self):
        diff = compare_summaries(
            _summary(), _summary(final_best=1.2,
                                 best_per_generation=[3.0, 2.0, 1.2]))
        names = {c.name for c in diff.regressions}
        assert "final_best" in names and "convergence" in names

    def test_better_final_best_is_not_a_regression(self):
        diff = compare_summaries(
            _summary(),
            _summary(final_best=0.5, best_per_generation=[3.0, 2.0, 0.5]))
        assert all(c.ok for c in diff.checks
                   if c.name in ("final_best",))

    def test_new_failures_and_guard_violations_regress(self):
        diff = compare_summaries(
            _summary(), _summary(n_failures=2, guard_violations=1.0))
        names = {c.name for c in diff.regressions}
        assert {"n_failures", "guard_violations"} <= names

    def test_cache_hit_rate_drop_regresses(self):
        diff = compare_summaries(_summary(),
                                 _summary(cache_hit_rate=0.3))
        assert any(c.name == "cache_hit_rate" and not c.ok
                   for c in diff.checks)
        # ... but an improvement does not.
        diff = compare_summaries(_summary(),
                                 _summary(cache_hit_rate=0.9))
        assert diff.ok

    def test_wall_time_is_informational(self):
        diff = compare_summaries(_summary(), _summary(wall_time_s=50.0))
        wall = [c for c in diff.checks if c.name == "wall_time_s"][0]
        assert not wall.checked and wall.ok

    def test_tolerance_override(self):
        loose = {"final_best": ("rel", 0.5, "increase")}
        diff = compare_summaries(
            _summary(),
            _summary(final_best=1.2,
                     best_per_generation=[3.0, 2.0, 1.2]),
            tolerances={**loose,
                        "convergence": ("rel", 0.5, "both")})
        assert diff.ok

    def test_infinite_pairs_match(self):
        inf = float("inf")
        diff = compare_summaries(
            _summary(best_per_generation=[inf, 2.0, 1.0]),
            _summary(best_per_generation=[inf, 2.0, 1.0]))
        assert diff.ok

    def test_bench_json_bare_baseline(self, tmp_path, fresh_globals):
        bench = tmp_path / "BENCH_engine.json"
        bench.write_text(json.dumps({"candidates_per_s": 100.0,
                                     "label": "x"}))
        baseline = load_summary(str(bench))
        assert baseline.bare
        candidate = _summary(counters={"candidates_per_s": 95.0})
        diff = compare_summaries(baseline, candidate)
        assert diff.ok  # within the 10% bare tolerance
        worse = _summary(counters={"candidates_per_s": 50.0})
        assert not compare_summaries(baseline, worse).ok

    def test_summary_json_roundtrip(self, tmp_path):
        summary = _summary()
        path = str(tmp_path / "summary.json")
        summary.to_json(path)
        loaded = load_summary(path)
        assert loaded.final_best == summary.final_best
        assert loaded.best_per_generation == summary.best_per_generation
        assert not loaded.bare

    def test_default_tolerances_cover_all_checked_fields(self):
        for name in ("final_best", "convergence", "total_nfev",
                     "n_failures", "guard_violations", "cache_hit_rate",
                     "wall_time_s"):
            assert name in DEFAULT_TOLERANCES

    def test_format_diff_renders_verdict(self):
        diff = compare_summaries(_summary(), _summary(n_failures=3))
        text = format_diff(diff)
        assert "REGRESSION" in text
        assert "n_failures" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    @pytest.fixture()
    def recorded(self, tmp_path, fresh_globals):
        root = str(tmp_path / "runs")
        with recorded_run(root, run_id="cli-run") as run:
            for g in range(3):
                run.journal(_record(g, best=1.0 / (g + 1)))
        return root, run

    def test_summary_human_and_json(self, recorded, capsys):
        root, run = recorded
        assert cli_main(["summary", run.path]) == 0
        out = capsys.readouterr().out
        assert "cli-run" in out and "generations" in out
        assert cli_main(["summary", run.journal_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_generations"] == 3

    def test_summary_resolves_run_id_via_root(self, recorded, capsys):
        root, _ = recorded
        assert cli_main(["--runs-root", root, "summary", "cli-run"]) == 0
        assert "cli-run" in capsys.readouterr().out

    def test_tail(self, recorded, capsys):
        _, run = recorded
        assert cli_main(["tail", run.path, "-n", "2",
                         "--event", "generation"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["event"] == "generation"

    def test_compare_ok_and_regression_exit_codes(self, recorded,
                                                  tmp_path, capsys,
                                                  fresh_globals):
        root, run = recorded
        assert cli_main(["compare", run.path, run.path]) == 0
        with recorded_run(root, run_id="worse") as worse:
            for g in range(3):
                worse.journal(_record(g, best=2.0 / (g + 1)))
        assert cli_main(["compare", run.path, worse.path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_compare_tolerance_override_flag(self, recorded, capsys,
                                             fresh_globals):
        root, run = recorded
        with recorded_run(root, run_id="worse2") as worse:
            for g in range(3):
                worse.journal(_record(g, best=1.02 / (g + 1)))
        assert cli_main(["compare", run.path, worse.path]) == 1
        capsys.readouterr()
        assert cli_main([
            "compare", run.path, worse.path,
            "--tol", "final_best=rel:0.10",
            "--tol", "convergence=rel:0.10",
        ]) == 0

    def test_unknown_run_id_exits_2(self, recorded, capsys):
        root, _ = recorded
        assert cli_main(["--runs-root", root, "summary", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_flame(self, tmp_path, capsys):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        trace_path = str(tmp_path / "trace.json")
        tracer.to_json(trace_path)
        assert cli_main(["flame", trace_path]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "child" in out

    def test_flame_missing_trace_exits_2(self, tmp_path, capsys):
        os.makedirs(tmp_path / "empty-run")
        assert cli_main(["flame", str(tmp_path / "empty-run")]) == 2
