"""Integration tests of the design flow, measurement sim, and IM3 check."""

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.design import DesignFlow
from repro.core.evaluation import MeasurementSettings, simulate_measurement
from repro.core.intermod import two_tone_analysis
from repro.passives.catalog import E24
from repro.rf.frequency import FrequencyGrid


@pytest.fixture(scope="module")
def flow():
    from repro.devices.reference import make_reference_device

    return DesignFlow(make_reference_device().small_signal)


@pytest.fixture(scope="module")
def standard_result(flow):
    """One cheap standard goal-attainment solve shared by this module."""
    return flow.run_standard()


class TestDesignFlow:
    def test_standard_run_feasible(self, flow, standard_result):
        assert standard_result.constraint_violation <= 1e-6
        assert standard_result.objectives[0] < 1.0        # NFmax < 1 dB
        assert -standard_result.objectives[1] > 12.0      # GTmin > 12 dB

    def test_finalize_snaps_to_catalogue(self, flow, standard_result):
        final = flow.finalize(standard_result)
        for value in (final.snapped.l_in, final.snapped.l_deg,
                      final.snapped.c_in, final.snapped.c_out,
                      final.snapped.l_choke, final.snapped.c_sh):
            mantissa = value / 10 ** np.floor(np.log10(value))
            distances = np.abs(np.log(np.array(E24) / mantissa))
            distances = np.minimum(
                distances,
                np.abs(np.log(np.array(E24) * 10 / mantissa)),
            )
            assert distances.min() < 1e-9

    def test_snapped_design_still_works(self, flow, standard_result):
        final = flow.finalize(standard_result)
        snapped = final.snapped_performance
        assert snapped.nf_max_db < 1.2
        assert snapped.gt_min_db > 10.0
        assert snapped.mu_min > 1.0   # mu-margin headroom survives snapping

    def test_per_band_report_covers_all_bands(self, flow, standard_result):
        from repro.core.bands import GNSS_BANDS

        final = flow.finalize(standard_result)
        assert set(final.per_band) == {band.label for band in GNSS_BANDS}
        for values in final.per_band.values():
            assert values["NF_dB"] < 1.2
            assert values["GT_dB"] > 10.0

    def test_summary_rows_complete(self, flow, standard_result):
        final = flow.finalize(standard_result)
        labels = [label for label, __ in final.summary_rows()]
        assert "Vgs [V]" in labels
        assert "Rstab [ohm]" in labels


class TestMeasurementSimulation:
    def test_measured_tracks_designed(self, flow):
        template = flow.template
        measurement = simulate_measurement(template, DesignVariables())
        assert measurement.worst_deviation_db(2, 1) < 0.6
        nf_delta = np.abs(
            measurement.nf_measured_db - measurement.nf_designed_db
        )
        assert np.max(nf_delta) < 0.4

    def test_reproducible_with_seed(self, flow):
        settings = MeasurementSettings(seed=3)
        a = simulate_measurement(flow.template, DesignVariables(),
                                 settings=settings)
        b = simulate_measurement(flow.template, DesignVariables(),
                                 settings=settings)
        np.testing.assert_array_equal(a.s_measured, b.s_measured)

    def test_nf_offset_systematic(self, flow):
        settings = MeasurementSettings(nf_jitter_db=0.0, nf_offset_db=0.2)
        measurement = simulate_measurement(flow.template, DesignVariables(),
                                           settings=settings)
        np.testing.assert_allclose(
            measurement.nf_measured_db - measurement.nf_designed_db, 0.2
        )

    def test_sparam_db_accessor(self, flow):
        measurement = simulate_measurement(flow.template, DesignVariables())
        s21_db = measurement.sparam_db(2, 1)
        assert s21_db.shape == measurement.frequency.f_hz.shape
        assert np.all(s21_db > 0)  # it is an amplifier


class TestIntermodulation:
    def test_im3_slope_is_three(self, flow):
        result = two_tone_analysis(flow.template, DesignVariables())
        assert result.im3_slope() == pytest.approx(3.0, abs=1e-6)

    def test_oip3_is_iip3_plus_gain(self, flow):
        result = two_tone_analysis(flow.template, DesignVariables())
        assert result.oip3_dbm == pytest.approx(
            result.iip3_dbm + result.gt_db, abs=1e-9
        )

    def test_fundamental_follows_gain(self, flow):
        result = two_tone_analysis(flow.template, DesignVariables())
        np.testing.assert_allclose(
            result.pout_fund_dbm, result.pin_dbm + result.gt_db, atol=1e-9
        )

    def test_intercept_above_sweep_extrapolation(self, flow):
        # The IM3 line extrapolated to the intercept must meet the
        # fundamental line at OIP3.
        result = two_tone_analysis(flow.template, DesignVariables())
        fund_fit = np.polyfit(result.pin_dbm, result.pout_fund_dbm, 1)
        im3_fit = np.polyfit(result.pin_dbm, result.pout_im3_dbm, 1)
        pin_cross = (im3_fit[1] - fund_fit[1]) / (fund_fit[0] - im3_fit[0])
        pout_cross = np.polyval(fund_fit, pin_cross)
        assert pout_cross == pytest.approx(result.oip3_dbm, abs=0.1)

    def test_oip3_reasonable_magnitude(self, flow):
        result = two_tone_analysis(flow.template, DesignVariables())
        assert 10.0 < result.oip3_dbm < 60.0

    def test_frequency_dependence(self, flow):
        low = two_tone_analysis(flow.template, DesignVariables(),
                                f_center=1.2e9)
        high = two_tone_analysis(flow.template, DesignVariables(),
                                 f_center=1.6e9)
        assert low.iip3_dbm != pytest.approx(high.iip3_dbm, abs=1e-6)
