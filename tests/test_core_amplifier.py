"""Amplifier template and objective tests (repro.core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import (
    DESIGN_BAND,
    GNSS_BANDS,
    design_grid,
    stability_grid,
)
from repro.core.objectives import DesignSpec, LnaEvaluator, build_lna_problem


@pytest.fixture(scope="module")
def template(golden_device_module):
    return AmplifierTemplate(golden_device_module.small_signal)


@pytest.fixture(scope="module")
def golden_device_module():
    from repro.devices.reference import make_reference_device

    return make_reference_device()


class TestBands:
    def test_all_gnss_bands_inside_design_band(self):
        for band in GNSS_BANDS:
            assert band.f_low >= DESIGN_BAND.f_low
            assert band.f_high <= DESIGN_BAND.f_high

    def test_grids(self):
        grid = design_grid(11)
        assert grid.f_hz[0] == DESIGN_BAND.f_low
        assert grid.f_hz[-1] == DESIGN_BAND.f_high
        guard = stability_grid(11)
        assert guard.f_hz[0] < DESIGN_BAND.f_low
        assert guard.f_hz[-1] > DESIGN_BAND.f_high


class TestDesignVariables:
    def test_vector_roundtrip(self):
        variables = DesignVariables()
        rebuilt = DesignVariables.from_vector(variables.to_vector())
        assert rebuilt == variables

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_unit_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        unit = rng.random(len(DesignVariables.NAMES))
        variables = DesignVariables.from_unit(unit)
        np.testing.assert_allclose(variables.to_unit(), unit, atol=1e-12)

    def test_unit_clipped(self):
        variables = DesignVariables.from_unit(
            np.full(len(DesignVariables.NAMES), 2.0)
        )
        np.testing.assert_allclose(variables.to_vector(),
                                   DesignVariables.UPPER)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            DesignVariables.from_vector(np.zeros(3))

    def test_replaced(self):
        variables = DesignVariables().replaced(vds=4.0)
        assert variables.vds == 4.0


class TestTemplateEvaluation:
    def test_default_design_performance(self, template):
        perf = template.evaluate(DesignVariables())
        assert perf.nf_max_db < 1.0          # low-noise
        assert perf.gt_min_db > 10.0         # real gain
        assert perf.mu_min > 1.0             # stabilized default
        assert 0.01 < perf.ids < 0.08
        summary = perf.summary()
        assert set(summary) == {
            "NFmax_dB", "GTmin_dB", "ripple_dB", "S11max_dB", "S22max_dB",
            "mu_min", "Ids_mA",
        }

    def test_more_degeneration_less_gain(self, template):
        light = template.evaluate(DesignVariables(l_deg=0.3e-9))
        heavy = template.evaluate(DesignVariables(l_deg=2.5e-9))
        assert heavy.gt_min_db < light.gt_min_db

    def test_higher_current_more_gain(self, template):
        low = template.evaluate(DesignVariables(vgs=0.42))
        high = template.evaluate(DesignVariables(vgs=0.60))
        assert high.ids > low.ids

    def test_solve_returns_noisy_twoport(self, template):
        noisy = template.solve(DesignVariables(), design_grid(5))
        assert noisy.network.s.shape == (5, 2, 2)
        assert np.all(noisy.noise_figure_db() > 0)

    def test_circuit_is_two_port(self, template):
        circuit = template.build_circuit(DesignVariables())
        assert len(circuit.ports) == 2


class TestObjectives:
    def test_problem_in_unit_box(self, template):
        problem = build_lna_problem(template)
        assert np.all(problem.lower == 0.0)
        assert np.all(problem.upper == 1.0)

    def test_objectives_and_constraints_consistent(self, template):
        evaluator = LnaEvaluator(template)
        problem = build_lna_problem(template, evaluator=evaluator)
        unit_x = DesignVariables().to_unit()
        objectives = problem.objectives(unit_x)
        constraints = problem.constraints(unit_x)
        perf = evaluator.performance(unit_x)
        assert objectives[0] == pytest.approx(perf.nf_max_db)
        assert objectives[1] == pytest.approx(-perf.gt_min_db)
        assert constraints.shape == (5,)
        # Default design satisfies the supply-current constraint.
        assert constraints[4] < 0

    def test_evaluator_caches_repeat_calls(self, template):
        evaluator = LnaEvaluator(template)
        problem = build_lna_problem(template, evaluator=evaluator)
        unit_x = DesignVariables().to_unit()
        problem.objectives(unit_x)
        solves_after_first = evaluator.n_solves
        problem.constraints(unit_x)
        problem.objectives(unit_x)
        assert evaluator.n_solves == solves_after_first

    def test_spec_fields(self):
        spec = DesignSpec()
        assert spec.mu_margin > 1.0
        assert spec.ids_max > 0
