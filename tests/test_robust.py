"""Yield-aware robust evaluation (repro.optimize.robust).

Contracts under test:

* :class:`CornerSet` — construction, validation, composition, the
  physical-space ``apply`` map, and the Woodbury-eligible bias-only
  structure actually taking the sparse tier's low-rank path;
* :class:`QuadraticSurrogate` — deterministic ridge fits, the
  ready-gate, history cap, and bit-identical state round-trips;
* :class:`RobustEvaluator` — batched sweeps, surrogate pre-screening
  with journaled ``screen_decision`` events, poison-corner quarantine
  with healthy corners bit-identical, and checkpointable state;
* the robust NSGA-II pipeline — a killed run resumes **bit-for-bit**
  (corner RNG + surrogate history restored through the checkpoint);
* :class:`RobustScalarObjective` — picklable, fault-tolerant under
  injection, and runnable as the ``robust.optimize`` service job.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import CompiledTemplate
from repro.core.tolerance import ToleranceSpec
from repro.experiments.common import reference_device
from repro.obs.journal import RunJournal, set_journal
from repro.optimize import MemoryCheckpointStore, nsga2
from repro.optimize.faults import FaultInjector
from repro.optimize.metaheuristics import differential_evolution
from repro.optimize.pareto import pareto_filter
from repro.optimize.robust import (
    BIAS_VARS,
    PENALTY_GT_DB,
    PENALTY_NF_DB,
    CornerSet,
    QuadraticSurrogate,
    RobustEvaluator,
    RobustScalarObjective,
    RobustStateSink,
    build_robust_problem,
    robust_score,
)

N_VARS = len(DesignVariables.NAMES)


@pytest.fixture(scope="module")
def template():
    return AmplifierTemplate(reference_device().small_signal)


@pytest.fixture()
def journal(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    recorder = RunJournal(path, run_id="test")
    previous = set_journal(recorder)

    def events():
        recorder.flush()
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    try:
        yield events
    finally:
        set_journal(previous)
        recorder.close()


def _evaluator(template, **overrides):
    kwargs = dict(band_grid=design_grid(5), guard_grid=stability_grid(6),
                  gt_ship_limit_db=11.0)
    kwargs.update(overrides)
    return RobustEvaluator(template, **kwargs)


# ----------------------------------------------------------------------
# corner sets
# ----------------------------------------------------------------------

class TestCornerSet:
    def test_nominal_is_identity(self):
        x = np.linspace(1.0, 2.0, N_VARS)
        corners = CornerSet.nominal()
        np.testing.assert_array_equal(corners.apply(x), x[None, :])

    def test_from_tolerances_is_the_corner_book(self):
        tol = ToleranceSpec(inductor=0.1)
        corners = CornerSet.from_tolerances(tol)
        assert corners.n_corners == 10 and len(corners) == 10
        assert "L-low" in corners.names and "all-high" in corners.names
        x = np.ones(N_VARS)
        swept = corners.apply(x)
        low = swept[corners.names.index("L-low")]
        # inductor columns pushed to -10 %, everything else nominal
        idx = DesignVariables.NAMES.index("l_in")
        assert low[idx] == pytest.approx(0.9)
        assert low[DesignVariables.NAMES.index("c_in")] == 1.0

    def test_bias_corners_are_bias_only_and_tolerances_are_not(self):
        assert CornerSet.bias().is_bias_only
        assert not CornerSet.from_tolerances().is_bias_only
        assert not CornerSet.temperature().is_bias_only

    def test_composition_concatenates(self):
        combined = CornerSet.from_tolerances() + CornerSet.bias()
        assert combined.n_corners == 14
        assert combined.names[:10] == CornerSet.from_tolerances().names

    def test_temperature_corners(self):
        corners = CornerSet.temperature(t_min_c=-40.0, t_max_c=85.0)
        assert corners.n_corners == 2
        cold, hot = corners.scale
        l_idx = DesignVariables.NAMES.index("l_in")
        assert cold[l_idx] < 1.0 < hot[l_idx]  # positive tempco
        with pytest.raises(ValueError, match="t_min_c"):
            CornerSet.temperature(t_min_c=50.0, t_max_c=25.0)

    def test_monte_carlo_is_seed_deterministic(self):
        a = CornerSet.monte_carlo(n_trials=5, rng=7)
        b = CornerSet.monte_carlo(n_trials=5, rng=7)
        np.testing.assert_array_equal(a.scale, b.scale)
        np.testing.assert_array_equal(a.offset, b.offset)
        assert a.names[0] == "mc-000"
        with pytest.raises(ValueError, match="n_trials"):
            CornerSet.monte_carlo(n_trials=0)

    def test_validation_rejects_bad_input(self):
        ones = np.ones((2, N_VARS))
        zeros = np.zeros((2, N_VARS))
        with pytest.raises(ValueError, match="positive"):
            CornerSet(("a", "b"), -ones, zeros)
        with pytest.raises(ValueError, match="names"):
            CornerSet(("only-one",), ones, zeros)
        with pytest.raises(ValueError, match="finite"):
            CornerSet(("a", "b"), ones * np.nan, zeros)
        with pytest.raises(ValueError, match="matching"):
            CornerSet(("a", "b"), ones, np.zeros((2, 3)))
        with pytest.raises(ValueError, match="width"):
            CornerSet.bias() + CornerSet(("w",), np.ones((1, 3)),
                                         np.zeros((1, 3)))
        with pytest.raises(ValueError, match="physical vector"):
            CornerSet.bias().apply(np.ones(3))


def test_bias_only_sweep_takes_woodbury_path(template):
    engine = CompiledTemplate(template, design_grid(9), stability_grid(12),
                              verify=False, solver="sparse")
    corner_x = CornerSet.bias().apply(DesignVariables().to_vector())
    engine.performance_batch_physical(corner_x)
    assert engine._plan.last_update == "woodbury"


# ----------------------------------------------------------------------
# surrogate
# ----------------------------------------------------------------------

class TestQuadraticSurrogate:
    def test_raises_before_ready(self):
        surrogate = QuadraticSurrogate(n_vars=2, n_outputs=1, min_fit=8)
        surrogate.observe(np.zeros((4, 2)), np.zeros((4, 1)))
        assert not surrogate.ready
        with pytest.raises(RuntimeError, match="observations"):
            surrogate.predict(np.zeros((1, 2)))

    def test_recovers_an_exact_quadratic(self):
        rng = np.random.default_rng(11)
        x = rng.random((60, 2))
        y = (1.0 + 2.0 * x[:, 0] - x[:, 1] + 0.5 * x[:, 0] * x[:, 1]
             + x[:, 1] ** 2)[:, None]
        surrogate = QuadraticSurrogate(n_vars=2, n_outputs=1, min_fit=8)
        surrogate.observe(x, y)
        probe = rng.random((10, 2))
        truth = (1.0 + 2.0 * probe[:, 0] - probe[:, 1]
                 + 0.5 * probe[:, 0] * probe[:, 1] + probe[:, 1] ** 2)
        np.testing.assert_allclose(surrogate.predict(probe)[:, 0], truth,
                                   atol=1e-4)

    def test_history_is_fifo_capped(self):
        surrogate = QuadraticSurrogate(n_vars=1, n_outputs=1, min_fit=4,
                                       max_history=10)
        surrogate.observe(np.arange(25.0)[:, None],
                          np.arange(25.0)[:, None])
        assert len(surrogate) == 10
        assert surrogate.state()["x"][0, 0] == 15.0  # oldest dropped

    def test_state_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(3)
        a = QuadraticSurrogate(n_vars=3, n_outputs=2, min_fit=8)
        a.observe(rng.random((20, 3)), rng.random((20, 2)))
        b = QuadraticSurrogate(n_vars=3, n_outputs=2, min_fit=8)
        b.restore(a.state())
        probe = rng.random((5, 3))
        np.testing.assert_array_equal(a.predict(probe), b.predict(probe))


def test_robust_score_orders_as_expected():
    good = robust_score(0.6, 14.0, 1.0)
    worse_nf = robust_score(0.8, 14.0, 1.0)
    worse_yield = robust_score(0.6, 14.0, 0.5)
    assert good < worse_nf and good < worse_yield


# ----------------------------------------------------------------------
# the evaluator
# ----------------------------------------------------------------------

class TestRobustEvaluator:
    def test_batch_shapes_and_ranges(self, template):
        evaluator = _evaluator(template)
        unit_x = np.full((3, N_VARS), 0.5)
        figures = evaluator.evaluate_batch(unit_x)
        assert len(figures) == 3
        assert np.all((figures.yield_fraction >= 0.0)
                      & (figures.yield_fraction <= 1.0))
        assert np.all(np.isfinite(figures.nf_worst_db))
        assert not np.any(figures.screened)  # no screening configured
        assert evaluator.n_sweeps == 3
        assert evaluator.n_corner_evals == 3 * evaluator.corners.n_corners

    def test_screening_activates_and_is_journaled(self, template, journal):
        evaluator = _evaluator(template, screen_fraction=0.5,
                               min_screen_history=8)
        rng = np.random.default_rng(0)
        evaluator.evaluate_batch(rng.random((8, N_VARS)))   # warmup
        figures = evaluator.evaluate_batch(rng.random((8, N_VARS)))
        assert evaluator.n_screened == 4
        assert int(np.sum(figures.screened)) == 4
        # screened rows carry clipped predictions, swept rows real data
        assert np.all(figures.yield_fraction[figures.screened] <= 1.0)
        decisions = [r for r in journal()
                     if r["event"] == "screen_decision"]
        assert [d["mode"] for d in decisions] == ["warmup", "surrogate"]
        assert decisions[1]["n_full"] == 4
        assert decisions[1]["n_screened"] == 4
        assert decisions[1]["history"] == 8

    def test_screen_false_forces_a_full_sweep(self, template):
        evaluator = _evaluator(template, screen_fraction=0.5,
                               min_screen_history=8)
        rng = np.random.default_rng(1)
        evaluator.evaluate_batch(rng.random((8, N_VARS)))
        figures = evaluator.evaluate_batch(rng.random((4, N_VARS)),
                                           screen=False)
        assert not np.any(figures.screened)
        assert evaluator.n_screened == 0

    def test_invalid_screen_fraction_rejected(self, template):
        with pytest.raises(ValueError, match="screen_fraction"):
            _evaluator(template, screen_fraction=0.0)

    def test_poison_corner_quarantines_healthy_stay_bit_identical(
            self, template):
        healthy = CornerSet.bias()
        poison_offset = np.zeros((1, N_VARS))
        poison_offset[0, BIAS_VARS[0]] = -5.0  # drives Vgs unphysical
        poison = CornerSet(("poison",), np.ones((1, N_VARS)), poison_offset)
        unit_x = np.full((1, N_VARS), 0.5)

        clean = _evaluator(template, corners=healthy)
        sick = _evaluator(template, corners=healthy + poison)
        f_clean = clean.evaluate_batch(unit_x)
        f_sick = sick.evaluate_batch(unit_x)

        assert f_clean.n_quarantined[0] == 0
        assert f_sick.n_quarantined[0] == 1
        # worst-case figures over the healthy corners are bit-identical
        assert f_sick.nf_worst_db[0] == f_clean.nf_worst_db[0]
        assert f_sick.gt_worst_db[0] == f_clean.gt_worst_db[0]
        assert f_sick.mu_worst[0] == f_clean.mu_worst[0]
        # the quarantined corner counts against yield
        assert f_sick.yield_fraction[0] == pytest.approx(
            f_clean.yield_fraction[0] * len(healthy) / (len(healthy) + 1))

    def test_all_corners_quarantined_yields_penalty_figures(self, template):
        offsets = np.zeros((2, N_VARS))
        offsets[:, BIAS_VARS[0]] = -5.0
        all_poison = CornerSet(("p0", "p1"), np.ones((2, N_VARS)), offsets)
        evaluator = _evaluator(template, corners=all_poison)
        figures = evaluator.evaluate_batch(np.full((1, N_VARS), 0.5))
        assert figures.yield_fraction[0] == 0.0
        assert figures.nf_worst_db[0] == PENALTY_NF_DB
        assert figures.gt_worst_db[0] == PENALTY_GT_DB
        assert figures.mu_worst[0] == 0.0
        assert figures.n_quarantined[0] == 2

    def test_state_restore_is_bit_for_bit(self, template):
        a = _evaluator(template, n_mc_trials=4, seed=0,
                       screen_fraction=0.5, min_screen_history=8)
        rng = np.random.default_rng(2)
        a.evaluate_batch(rng.random((8, N_VARS)))
        a.evaluate_batch(rng.random((4, N_VARS)))
        saved = a.state()

        # a different seed proves restore overrides construction state
        b = _evaluator(template, n_mc_trials=4, seed=99,
                       screen_fraction=0.5, min_screen_history=8)
        b.restore(saved)
        assert b.corners.names == a.corners.names
        np.testing.assert_array_equal(b.corners.scale, a.corners.scale)
        assert b.n_sweeps == a.n_sweeps
        probe = rng.random((6, N_VARS))
        fa = a.evaluate_batch(probe)
        fb = b.evaluate_batch(probe)
        np.testing.assert_array_equal(fa.yield_fraction, fb.yield_fraction)
        np.testing.assert_array_equal(fa.nf_worst_db, fb.nf_worst_db)
        np.testing.assert_array_equal(fa.screened, fb.screened)


class TestRobustStateSink:
    class _Record:
        def __init__(self, extra):
            self.extra = extra

    def test_names_the_robust_columns_and_forwards(self, template):
        seen = []
        sink = RobustStateSink(_evaluator(template), inner=seen.append)
        record = self._Record({"min_f0": 0.71, "min_f2": -0.875})
        sink(record)
        assert record.extra["nf_worst_best"] == pytest.approx(0.71)
        assert record.extra["yield_best"] == pytest.approx(0.875)
        assert seen == [record]

    def test_non_robust_state_passes_through_to_inner(self, template):
        class Inner:
            def __init__(self):
                self.restored = None

            def state(self):
                return {"inner": True}

            def restore(self, state):
                self.restored = state

        inner = Inner()
        sink = RobustStateSink(_evaluator(template), inner=inner)
        state = sink.state()
        assert "robust" in state and state["inner"] == {"inner": True}
        sink.restore({"legacy": 1})  # telemetry from a non-robust run
        assert inner.restored == {"legacy": 1}


# ----------------------------------------------------------------------
# the robust problem + NSGA-II
# ----------------------------------------------------------------------

class TestRobustProblem:
    def test_shape_and_names(self, template):
        problem = build_robust_problem(
            template, evaluator=_evaluator(template))
        x = np.full(N_VARS, 0.5)
        assert problem.n_objectives == 3
        assert problem.objectives(x).shape == (3,)
        assert problem.constraints(x).shape == (5,)
        assert problem.objective_names == ("NFworst_dB", "-GTworst_dB",
                                           "-yield")

    def test_memo_shares_one_sweep_per_point(self, template):
        evaluator = _evaluator(template)
        problem = build_robust_problem(template, evaluator=evaluator)
        x = np.full(N_VARS, 0.5)
        problem.objectives(x)
        problem.constraints(x)  # same point: served from the memo
        assert evaluator.n_sweeps == 1
        problem.objectives(np.full(N_VARS, 0.4))
        assert evaluator.n_sweeps == 2


class _KillAfterBatches:
    """Batch-objective wrapper that interrupts after n calls."""

    def __init__(self, fn, n_calls):
        self._fn = fn
        self._remaining = int(n_calls)

    def __call__(self, x):
        self._remaining -= 1
        if self._remaining < 0:
            raise KeyboardInterrupt("simulated kill")
        return self._fn(x)


class TestRobustNsga2:
    def _pieces(self, template, kill_after=None):
        evaluator = _evaluator(template, corners=CornerSet.bias(),
                               n_mc_trials=4, seed=0,
                               screen_fraction=0.5, min_screen_history=12)
        problem = build_robust_problem(template, evaluator=evaluator)
        if kill_after is not None:
            problem.objectives_batch = _KillAfterBatches(
                problem.objectives_batch, kill_after)
        return evaluator, problem

    def test_front_smoke(self, template):
        evaluator, problem = self._pieces(template)
        result = nsga2(problem, population_size=8, n_generations=3, seed=0,
                       on_generation=RobustStateSink(evaluator))
        assert result.objectives.shape[1] == 3
        assert np.all(result.objectives[:, 2] >= -1.0)  # -yield in [-1, 0]
        keep = pareto_filter(result.objectives)
        assert len(keep) == result.objectives.shape[0]
        assert evaluator.n_screened > 0  # the screen actually engaged

    def test_kill_and_resume_bit_for_bit(self, template):
        kwargs = dict(population_size=8, n_generations=6, seed=5)
        ev_clean, problem_clean = self._pieces(template)
        clean = nsga2(problem_clean, on_generation=RobustStateSink(ev_clean),
                      **kwargs)

        store = MemoryCheckpointStore()
        ev_killed, problem_killed = self._pieces(template, kill_after=4)
        with pytest.raises(KeyboardInterrupt):
            nsga2(problem_killed, checkpoint_store=store, checkpoint_every=1,
                  on_generation=RobustStateSink(ev_killed), **kwargs)
        assert store.load() is not None

        ev_resume, problem_resume = self._pieces(template)
        resumed = nsga2(problem_resume, checkpoint_store=store,
                        checkpoint_every=1,
                        on_generation=RobustStateSink(ev_resume), **kwargs)
        np.testing.assert_array_equal(resumed.x, clean.x)
        np.testing.assert_array_equal(resumed.objectives, clean.objectives)
        assert resumed.nfev == clean.nfev
        assert resumed.health.resumed_at is not None
        assert store.load() is None


# ----------------------------------------------------------------------
# the scalar objective: pickling, faults, the service job
# ----------------------------------------------------------------------

class TestRobustScalarObjective:
    def test_pickle_round_trip_is_value_identical(self):
        objective = RobustScalarObjective(n_mc_trials=2, n_band=5,
                                          n_guard=6)
        clone = pickle.loads(pickle.dumps(objective))
        x = np.full(N_VARS, 0.5)
        assert clone(x) == objective(x)

    def test_de_absorbs_injected_faults(self):
        objective = RobustScalarObjective(n_mc_trials=2, n_band=5,
                                          n_guard=6,
                                          gt_ship_limit_db=11.0)
        injector = FaultInjector(objective, p_raise=0.15, p_nan=0.1, seed=3)
        result = differential_evolution(
            injector, np.zeros(N_VARS), np.ones(N_VARS),
            population_size=6, max_iterations=4, seed=1)
        assert np.isfinite(result.fun)
        assert injector.n_injected > 0
        assert result.health.n_failures == injector.n_injected

    def test_service_job_runs_to_done(self, tmp_path):
        from repro.service import JobService, JobSpec, ServiceClient

        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(JobSpec(
            objective="robust.optimize",
            objective_params={"n_trials": 2, "gt_ship_limit_db": 11.0},
            budget={"population_size": 6, "max_iterations": 3},
            seed=1,
        ))
        with JobService(root, slots=1) as service:
            record = service.wait(job.job_id, timeout=120.0)
        assert record.state == "done"
        assert np.isfinite(record.result["fun"])


# ----------------------------------------------------------------------
# obs integration: yield columns in summaries
# ----------------------------------------------------------------------

class TestObsYieldColumns:
    def test_e12_journal_grows_yield_columns(self, tmp_path, capsys):
        import glob

        from repro.experiments import e12_robust_front
        from repro.obs.cli import main as obs_main
        from repro.obs.compare import summarize_journal

        root = str(tmp_path / "runs")
        e12_robust_front.run(population_size=8, n_generations=2,
                             n_trials=2, seed=0, n_band=5, n_guard=6,
                             record_to=root)
        journals = glob.glob(f"{root}/*/journal.jsonl")
        assert len(journals) == 1
        summary = summarize_journal(journals[0])
        assert summary.yield_fraction is not None
        assert 0.0 <= summary.yield_fraction <= 1.0
        assert summary.worst_case_nf_db is not None
        assert np.isfinite(summary.worst_case_nf_db)

        assert obs_main(["summary", journals[0]]) == 0
        out = capsys.readouterr().out
        assert "best yield" in out
        assert "worst-case NF [dB]" in out
