"""Direct-stage and extraction-pipeline tests (repro.optimize)."""

import numpy as np
import pytest

from repro.devices.dcmodels import AngelovModel, CurticeQuadratic
from repro.devices.datasets import BiasPoint
from repro.devices.reference import ReferencePHEMT
from repro.optimize.direct import refine_least_squares, refine_nelder_mead
from repro.optimize.extraction import (
    extract_dc_model,
    extract_de_only,
    extract_local_only,
    extract_small_signal,
)
from repro.rf.frequency import FrequencyGrid


class TestDirectStages:
    def test_least_squares_linear_fit(self):
        x_data = np.linspace(0, 1, 20)
        y_data = 3.0 * x_data + 0.5

        def residuals(p):
            return p[0] * x_data + p[1] - y_data

        result = refine_least_squares(residuals, [1.0, 0.0],
                                      [-10, -10], [10, 10])
        np.testing.assert_allclose(result.x, [3.0, 0.5], atol=1e-8)
        assert result.converged

    def test_least_squares_respects_bounds(self):
        def residuals(p):
            return np.array([p[0] - 5.0])

        result = refine_least_squares(residuals, [0.0], [-1.0], [1.0])
        assert result.x[0] == pytest.approx(1.0, abs=1e-8)

    def test_least_squares_weights(self):
        # Weighting the second point to zero makes the fit hit the first.
        def residuals(p):
            return np.array([p[0] - 1.0, p[0] - 3.0])

        unweighted = refine_least_squares(residuals, [0.0], [-10], [10])
        assert unweighted.x[0] == pytest.approx(2.0, abs=1e-6)
        weighted = refine_least_squares(residuals, [0.0], [-10], [10],
                                        weights=np.array([1.0, 1e-6]))
        assert weighted.x[0] == pytest.approx(1.0, abs=1e-3)

    def test_nelder_mead_quadratic(self):
        result = refine_nelder_mead(
            lambda x: float((x[0] - 0.3) ** 2 + (x[1] + 0.4) ** 2),
            [0.0, 0.0], [-1, -1], [1, 1],
        )
        np.testing.assert_allclose(result.x, [0.3, -0.4], atol=1e-5)


class TestDcExtraction:
    @pytest.fixture(scope="class")
    def iv(self):
        return ReferencePHEMT(seed=77).iv_dataset()

    def test_three_step_reaches_noise_floor(self, iv):
        result = extract_dc_model(AngelovModel, iv, seed=0,
                                  de_population=25, de_iterations=80)
        assert result.rms_error_percent < 0.6
        assert result.converged

    def test_stage_errors_non_increasing(self, iv):
        result = extract_dc_model(AngelovModel, iv, seed=0,
                                  de_population=25, de_iterations=80)
        assert result.stage_errors["local"] <= result.stage_errors[
            "global"
        ] + 1e-9

    def test_wrong_model_fits_worse(self, iv):
        good = extract_dc_model(AngelovModel, iv, seed=0,
                                de_population=25, de_iterations=80)
        bad = extract_dc_model(CurticeQuadratic, iv, seed=0,
                               de_population=25, de_iterations=80)
        assert bad.rms_error_percent > 2.0 * good.rms_error_percent

    def test_de_only_less_accurate_than_three_step(self, iv):
        three_step = extract_dc_model(AngelovModel, iv, seed=0,
                                      de_population=25, de_iterations=60)
        de_only = extract_de_only(AngelovModel, iv, seed=0,
                                  de_population=25, de_iterations=60)
        assert three_step.rms_error_percent <= de_only.rms_error_percent
        assert de_only.nfev_local == 0

    def test_local_only_runs(self, iv):
        result = extract_local_only(AngelovModel, iv, seed=0)
        assert result.nfev_global == 0
        assert result.rms_error_percent > 0

    def test_robust_stage_rejects_outliers(self):
        # Corrupt a handful of I-V points hard; the three-step result
        # must stay near the clean-fit parameters.
        device = ReferencePHEMT(seed=11)
        iv = device.iv_dataset(relative_noise=0.002,
                               absolute_noise=5e-6)
        rng = np.random.default_rng(4)
        corrupted = iv.ids.copy()
        flat = corrupted.ravel()
        hit = rng.choice(flat.size, size=5, replace=False)
        flat[hit] *= 2.5  # gross glitches
        iv.ids = corrupted
        robust = extract_dc_model(AngelovModel, iv, seed=0,
                                  de_population=25, de_iterations=80)
        de_only = extract_de_only(AngelovModel, iv, seed=0,
                                  de_population=25, de_iterations=80)
        truth = device.dc
        vgs, vds = 0.52, 3.0
        err_robust = abs(
            float(robust.model.ids(vgs, vds)) - float(truth.ids(vgs, vds))
        )
        err_plain = abs(
            float(de_only.model.ids(vgs, vds)) - float(truth.ids(vgs, vds))
        )
        assert err_robust <= err_plain * 1.05


class TestSmallSignalExtraction:
    def test_recovers_intrinsic_elements(self):
        device = ReferencePHEMT(seed=21)
        fg = FrequencyGrid.linear(0.5e9, 3e9, 15)
        bias = BiasPoint(0.52, 3.0)
        record = device.sparam_record(fg, bias, error_magnitude=0.002)
        result = extract_small_signal(
            record, device.small_signal.extrinsics, seed=1,
            de_population=30, de_iterations=120,
        )
        truth = device.small_signal.intrinsic_at(bias.vgs, bias.vds)
        assert result.intrinsic.gm == pytest.approx(truth.gm, rel=0.05)
        assert result.intrinsic.cgs == pytest.approx(truth.cgs, rel=0.10)
        assert result.rms_error < 0.05
