"""Solver-tier contracts: sparse plan, selection, isolation, copies.

Companion to the random-circuit equivalence sweep — this file pins the
*contract* surface of the sparse tier: kernels never mutate their
inputs, ``BatchACResult.candidate`` detaches, ``solver="auto"`` is
journaled, guards sample the reduced matrix, and the Woodbury residual
check falls ill-conditioned candidates back to full refactorization.
"""

import json
import pickle

import numpy as np
import pytest

from repro.analysis.compiled import (
    BatchNoiseSource,
    solve_ac_batch,
    solve_tensor_batch,
)
from repro.analysis.netlist import Circuit
from repro.analysis.sparsemna import (
    MutableGroup,
    build_plan,
    structural_costs,
)
from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.experiments.common import reference_device
from repro.guards.modes import guard_mode
from repro.obs.journal import RunJournal, set_journal
from repro.obs.metrics import Metrics, get_metrics, set_metrics
from repro.rf.frequency import FrequencyGrid

GRID = FrequencyGrid.linear(1.0e9, 2.0e9, 5)


@pytest.fixture()
def fresh_metrics():
    previous = get_metrics()
    metrics = Metrics()
    set_metrics(metrics)
    yield metrics
    set_metrics(previous)


@pytest.fixture()
def journal(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    recorder = RunJournal(path, run_id="test")
    previous = set_journal(recorder)

    def events():
        recorder.flush()
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    try:
        yield events
    finally:
        set_journal(previous)
        recorder.close()


@pytest.fixture(scope="module")
def lna_template():
    return AmplifierTemplate(reference_device().small_signal)


@pytest.fixture(scope="module")
def sparse_engine(lna_template):
    return CompiledTemplate(lna_template, solver="sparse", verify=False)


def _varying_tensor(n_batch=4, n_nodes=4):
    """A healthy same-topology batch whose candidates differ in a few
    entries (so the sparse tier has a stamp hull to condense)."""
    f = GRID.f_hz
    y = np.zeros((n_batch, f.size, n_nodes, n_nodes), dtype=complex)
    g = 1.0 / 75.0
    for a, b in ((0, 2), (2, 3), (3, 1)):
        y[:, :, a, a] += g
        y[:, :, b, b] += g
        y[:, :, a, b] -= g
        y[:, :, b, a] -= g
    for i in range(n_batch):
        y[i, :, 2, 2] += 1e-3 * (1.0 + 0.25 * i)
    return y


PORTS = np.array([0, 1])


# ----------------------------------------------------------------------
# non-mutating kernel
# ----------------------------------------------------------------------

class TestNonMutatingKernel:
    @pytest.mark.parametrize("solver", ["dense", "sparse", "auto"])
    def test_solve_tensor_batch_leaves_input_bit_identical(self, solver):
        y = _varying_tensor()
        psd = np.full((4, GRID.f_hz.size), 1e-20)
        sources = [BatchNoiseSource(
            np.array([[1.0], [0.0], [0.0], [0.0]], dtype=complex), psd
        )]
        before = y.tobytes()
        solve_tensor_batch(y, PORTS, 50.0, sources, solver=solver)
        assert y.tobytes() == before

    def test_solver_argument_validated(self):
        y = _varying_tensor()
        with pytest.raises(ValueError, match="solver"):
            solve_tensor_batch(y, PORTS, 50.0, solver="bogus")
        with pytest.raises(ValueError, match="solver"):
            CompiledTemplate(None, solver="bogus")


# ----------------------------------------------------------------------
# candidate() detaches
# ----------------------------------------------------------------------

def _divider(r_top: float) -> Circuit:
    circuit = Circuit("div")
    circuit.port("p1", "in")
    circuit.port("p2", "out")
    circuit.resistor("Rtop", "in", "out", r_top)
    circuit.resistor("Rbot", "out", "gnd", 50.0)
    return circuit


def test_candidate_returns_detached_copy():
    batch = solve_ac_batch([_divider(100.0), _divider(200.0)], GRID,
                           probe_nodes=("out",))
    view = batch.candidate(0)
    s_before = batch.s.copy()
    cy_before = batch.cy.copy()
    transfers_before = batch.node_transfers.copy()
    view.s[:] = 99.0
    view.cy[:] = 99.0
    view.node_transfers[:] = 99.0
    np.testing.assert_array_equal(batch.s, s_before)
    np.testing.assert_array_equal(batch.cy, cy_before)
    np.testing.assert_array_equal(batch.node_transfers, transfers_before)


# ----------------------------------------------------------------------
# solver selection
# ----------------------------------------------------------------------

def test_auto_solver_journals_decision(journal, lna_template):
    engine = CompiledTemplate(lna_template, solver="auto", verify=False)
    assert engine._solver_resolved == "sparse"
    decisions = [r for r in journal() if r["event"] == "solver_decision"]
    assert len(decisions) == 1
    record = decisions[0]
    assert record["chosen"] == "sparse"
    assert set(record["candidates"]) == {"dense", "sparse"}
    assert record["candidates"]["sparse"] < record["candidates"]["dense"]
    assert 0 < record["n_reduced"] < record["n_nodes"]
    assert record["rhs_columns"] > 2


def test_structural_costs_scale_with_reduction():
    wide = structural_costs(40, 5, 30, 2)
    assert wide["sparse"] < wide["dense"]
    flat = structural_costs(6, 6, 30, 2)
    assert flat["sparse"] >= flat["dense"] * 0.1  # no free lunch


def test_engine_pickle_round_trips_solver(sparse_engine):
    clone = pickle.loads(pickle.dumps(sparse_engine))
    assert clone.solver == "sparse"
    assert clone._solver_resolved == "sparse"
    pop = np.random.default_rng(3).random((4, len(DesignVariables.NAMES)))
    a = sparse_engine.performance_batch(pop)
    b = clone.performance_batch(pop)
    for name in ("nf_db", "gt_db", "s11_db", "s22_db", "mu_min", "ids"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))


# ----------------------------------------------------------------------
# guards + isolation on the sparse path
# ----------------------------------------------------------------------

def test_sparse_isolated_samples_conditioning_guard(fresh_metrics,
                                                    sparse_engine):
    pop = np.random.default_rng(5).random((4, len(DesignVariables.NAMES)))
    with guard_mode("warn"):
        batch, failures, n_fallbacks = (
            sparse_engine.performance_batch_isolated(pop)
        )
    assert all(f is None for f in failures)
    assert n_fallbacks == 0
    summary = fresh_metrics.histogram_summary("mna.condition_log10")
    assert summary["count"] >= 1
    # Healthy rows match the plain sparse batch path.
    plain = sparse_engine.performance_batch(pop)
    for name in ("nf_db", "gt_db", "mu_min"):
        np.testing.assert_allclose(getattr(batch, name),
                                   getattr(plain, name),
                                   rtol=1e-12, atol=1e-12)


def test_sparse_isolated_splices_dense_rescue(monkeypatch, fresh_metrics,
                                              sparse_engine):
    """A row the sparse path cannot represent is re-run through the
    dense isolated machinery and spliced back — not zero-filled."""
    pop = np.random.default_rng(11).random((4, len(DesignVariables.NAMES)))
    reference = sparse_engine.performance_batch(pop)
    plan = sparse_engine._plan
    real = plan.solve_rows

    def poisoned(coeffs, n_batch, update="full"):
        out = real(coeffs, n_batch, update=update)
        if n_batch == 4:
            out = np.array(out)
            out[1] = np.nan
        return out

    monkeypatch.setattr(plan, "solve_rows", poisoned)
    batch, failures, _ = sparse_engine.performance_batch_isolated(pop)
    assert all(f is None for f in failures)
    assert fresh_metrics.counter("mna.sparse_isolated_fallbacks") == 1
    # The rescued row agrees with the healthy reference; rows 0/2/3
    # never left the sparse path.
    for name in ("nf_db", "gt_db", "mu_min"):
        np.testing.assert_allclose(getattr(batch, name),
                                   getattr(reference, name),
                                   rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# Woodbury update path
# ----------------------------------------------------------------------

def _toy_plan(residual_tol=None):
    rng = np.random.default_rng(0)
    n, n_freq = 5, 3
    base = (rng.normal(size=(n_freq, n, n))
            + 1j * rng.normal(size=(n_freq, n, n))) * 0.01
    idx = np.arange(n)
    base[:, idx, idx] += 0.2
    group = MutableGroup("g23", np.array([2, 3, 2, 3]),
                         np.array([2, 3, 3, 2]),
                         np.array([1.0, 1.0, -1.0, -1.0]))
    rhs = np.zeros((n, 2), dtype=complex)
    rhs[0, 0] = 1.0
    rhs[1, 1] = 1.0
    kwargs = {}
    if residual_tol is not None:
        kwargs["residual_tol"] = residual_tol
    plan = build_plan(base, [group], np.array([0, 1]), 50.0, rhs,
                      out_rows=[0, 1], **kwargs)
    coeffs = {"g23": rng.uniform(1e-3, 5e-2, size=(6, 1))
              * np.ones((1, n_freq))}
    return plan, coeffs


def test_engine_bias_only_batch_uses_woodbury(sparse_engine):
    n = len(DesignVariables.NAMES)
    pop = np.tile(np.full(n, 0.5), (6, 1))
    pop[:, 0] = np.linspace(0.3, 0.7, 6)  # vary the bias only
    sparse_engine.performance_batch(pop)
    assert sparse_engine._plan.last_update == "woodbury"
    # A fully random population activates too many groups for the
    # update to win; auto must refactorize instead.
    sparse_engine.performance_batch(
        np.random.default_rng(2).random((6, n))
    )
    assert sparse_engine._plan.last_update == "full"


def test_woodbury_residual_fallback_refactorizes(fresh_metrics):
    plan, coeffs = _toy_plan()
    full = plan.solve_rows(coeffs, 6, update="full")
    wood = plan.solve_rows(coeffs, 6, update="woodbury")
    assert plan.last_update == "woodbury"
    np.testing.assert_allclose(wood, full, rtol=1e-10, atol=1e-14)
    assert fresh_metrics.counter("mna.woodbury_solves") == 6

    # An impossible residual tolerance forces the splice path: every
    # candidate is flagged and refactorized in full, and the answers
    # still come out right.
    strict_plan, _ = _toy_plan(residual_tol=0.0)
    spliced = strict_plan.solve_rows(coeffs, 6, update="woodbury")
    assert strict_plan.last_update == "woodbury"
    np.testing.assert_allclose(spliced, full, rtol=1e-12, atol=1e-15)
    assert fresh_metrics.counter("mna.woodbury_fallbacks") >= 5
