"""Catalogue-snapping tests (repro.passives.catalog)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.passives.catalog import E12, E24, series_values, snap_to_series


class TestSeriesValues:
    def test_counts(self):
        values = series_values(E24, decade_min=-12, decade_max=-11)
        assert values.size == 2 * len(E24)

    def test_sorted(self):
        values = series_values(E12, decade_min=-12, decade_max=-9)
        assert np.all(np.diff(values) > 0)


class TestSnapping:
    def test_exact_value_unchanged(self):
        assert snap_to_series(4.7e-9) == pytest.approx(4.7e-9)

    def test_midpoint_snaps_to_nearest(self):
        snapped = snap_to_series(1.05e-9)
        assert min(abs(snapped - 1.0e-9), abs(snapped - 1.1e-9)) < 1e-15

    @given(st.floats(min_value=1e-12, max_value=1e-6))
    @settings(max_examples=100, deadline=None)
    def test_snap_within_one_e24_step(self, value):
        snapped = snap_to_series(value)
        # The widest E24 gap is 1.3 -> 1.5 (ratio 1.154), so the
        # geometric distance to the snapped value is below half of it.
        assert abs(np.log(snapped / value)) < 0.5 * np.log(1.5 / 1.3) + 1e-9

    @given(st.floats(min_value=1e-12, max_value=1e-6))
    @settings(max_examples=50, deadline=None)
    def test_snap_idempotent(self, value):
        snapped = snap_to_series(value)
        assert snap_to_series(snapped) == pytest.approx(snapped, rel=1e-12)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            snap_to_series(0.0)
        with pytest.raises(ValueError):
            snap_to_series(-1e-9)
