"""The fault-tolerant job service: queue, supervisor, recovery, chaos.

Contracts under test:

* the durable queue's state machine — atomic claims (exactly one winner
  under a thread race), lease renewal/expiry, retry with jittered
  backoff behind a ``not_before`` gate, graceful release, cooperative
  cancellation, torn-record quarantine, admission control;
* the service loop — submit → lease → run → done with the journal,
  checkpoint, and ``result.json`` landing in the job's run directory;
  deadline enforcement; drain-and-resume bit-identity;
* crash recovery (the chaos soak) — SIGKILL the service process
  mid-job, start a fresh service on the same root, and the job resumes
  from its checkpoint and finishes **bit-identical** to an
  uninterrupted run, with zero leaked ``/dev/shm`` segments and the
  dead service's orphaned run directory collected by ``repro-obs gc``;
* the gc sweep — orphan run dirs found and deleted only with
  ``--force``, live (pending/leased) jobs protected, stale fleet
  segments reaped.
"""

import json
import os
import signal
import threading
import time
import multiprocessing

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.journal import has_run_end, replay_journal
from repro.obs.runs import find_orphan_runs
from repro.optimize.fleet import (
    list_segments,
    segment_owner_pid,
    stale_segments,
    unlink_segment,
)
from repro.service import (
    JobNotFound,
    JobQueue,
    JobRecord,
    JobService,
    JobSpec,
    LeaseLost,
    QueueFull,
    ServiceClient,
    register_experiment,
)
from repro.service.queue import live_job_ids


# ----------------------------------------------------------------------
# queue state machine
# ----------------------------------------------------------------------

def _queue(tmp_path, **kwargs):
    return JobQueue(str(tmp_path / "queue"), **kwargs)


def _spec(**overrides):
    base = dict(objective="bench.sphere",
                objective_params={"dim": 3},
                budget={"population_size": 8, "max_iterations": 5},
                seed=5)
    base.update(overrides)
    return JobSpec(**base)


class TestJobQueue:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        assert record.state == "pending"
        assert queue.counts()["pending"] == 1

        claimed = queue.claim("slot0", lease_s=30.0)
        assert claimed.job_id == record.job_id
        assert claimed.state == "leased"
        assert claimed.lease["owner"] == "slot0"
        assert queue.counts() == {"pending": 0, "leased": 1,
                                  "done": 0, "failed": 0}

        done = queue.complete(record.job_id, "slot0", {"fun": 1.0})
        assert done.state == "done"
        assert done.result == {"fun": 1.0}
        assert queue.load(record.job_id).state == "done"
        assert queue.counts()["leased"] == 0

    def test_claim_is_fifo_and_respects_backoff_gate(self, tmp_path):
        queue = _queue(tmp_path)
        first = queue.submit(_spec(), job_id="job-a")
        queue.submit(_spec(), job_id="job-b")
        assert queue.claim("s", 30.0).job_id == first.job_id

        # Gate job-b into the future: it must be skipped until then.
        gated = queue.load("job-b")
        gated.not_before = time.time() + 60.0
        queue._write_record("pending", gated)
        assert queue.claim("s", 30.0) is None
        assert queue.claim("s", 30.0,
                           now=time.time() + 120.0).job_id == "job-b"

    def test_concurrent_claims_have_exactly_one_winner(self, tmp_path):
        queue = _queue(tmp_path)
        queue.submit(_spec())
        barrier = threading.Barrier(8)
        wins = []

        def race(slot):
            barrier.wait()
            record = queue.claim(f"slot{slot}", 30.0)
            if record is not None:
                wins.append(slot)

        threads = [threading.Thread(target=race, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_admission_control_rejects_above_max_pending(self, tmp_path):
        queue = _queue(tmp_path, max_pending=2)
        queue.submit(_spec())
        queue.submit(_spec())
        with pytest.raises(QueueFull):
            queue.submit(_spec())
        assert queue.counts()["pending"] == 2

    def test_retryable_failure_requeues_with_backoff(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec(max_retries=2))
        queue.claim("s", 30.0)
        now = time.time()
        retried = queue.fail(record.job_id, "s", "transient boom",
                             retryable=True, now=now)
        assert retried.state == "pending"
        assert retried.attempt == 1
        assert retried.not_before > now          # jittered backoff gate
        assert retried.lease is None
        # Not claimable before the gate, claimable after it.
        assert queue.claim("s", 30.0, now=now) is None
        assert queue.claim("s", 30.0, now=now + 60.0) is not None

    def test_retry_budget_exhaustion_is_terminal(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec(max_retries=1))
        for attempt in (1, 2):
            assert queue.claim("s", 30.0, now=time.time() + 100.0 * attempt)
            outcome = queue.fail(record.job_id, "s", "boom", retryable=True)
        assert outcome.state == "failed"
        assert outcome.attempt == 2
        assert queue.load(record.job_id).state == "failed"

    def test_non_retryable_failure_skips_the_budget(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec(max_retries=5))
        queue.claim("s", 30.0)
        outcome = queue.fail(record.job_id, "s", "deadline",
                             retryable=False)
        assert outcome.state == "failed"
        assert outcome.error == "deadline"

    def test_lease_lost_on_foreign_owner_and_after_recovery(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        queue.claim("slot0", lease_s=0.5)
        with pytest.raises(LeaseLost):
            queue.renew(record.job_id, "intruder", 30.0)
        # Let the lease expire and recover it: the old owner is out.
        recovered = queue.recover_expired(now=time.time() + 10.0)
        assert recovered == [record.job_id]
        assert queue.load(record.job_id).takeovers == 1
        with pytest.raises(LeaseLost):
            queue.complete(record.job_id, "slot0", {})
        # The new claimer proceeds normally.
        takeover = queue.claim("slot1", 30.0)
        assert takeover.job_id == record.job_id
        queue.complete(record.job_id, "slot1", {})

    def test_recovery_leaves_fresh_leases_alone(self, tmp_path):
        queue = _queue(tmp_path)
        queue.submit(_spec())
        queue.claim("s", lease_s=60.0)
        assert queue.recover_expired() == []

    def test_recovery_retires_leased_shadow_of_terminal_record(
            self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        claimed = queue.claim("s", 30.0)
        queue.complete(record.job_id, "s", {})
        # Simulate a crash between the terminal write and the leased
        # unlink: re-materialize the leased copy.
        queue._write_record("leased", claimed)
        assert queue.recover_expired(now=time.time() + 100.0) == []
        assert not os.path.exists(queue._path("leased", record.job_id))
        assert queue.load(record.job_id).state == "done"

    def test_release_returns_job_intact(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        queue.claim("s", 30.0)
        released = queue.release(record.job_id, "s")
        assert released.state == "pending"
        assert released.attempt == 0
        assert released.takeovers == 0
        assert queue.claim("s2", 30.0).job_id == record.job_id

    def test_cancel_pending_fails_immediately(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        assert queue.cancel(record.job_id) == "failed"
        loaded = queue.load(record.job_id)
        assert loaded.state == "failed"
        assert loaded.error == "cancelled"

    def test_cancel_leased_sets_cooperative_marker(self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        queue.claim("s", 30.0)
        assert queue.cancel(record.job_id) == "leased"
        assert queue.cancel_requested(record.job_id)
        # A terminal transition clears the marker.
        queue.fail(record.job_id, "s", "cancelled", retryable=False)
        assert not queue.cancel_requested(record.job_id)

    def test_torn_record_is_quarantined_not_fatal(self, tmp_path):
        queue = _queue(tmp_path)
        good = queue.submit(_spec(), job_id="job-zz-good")
        torn = queue._path("pending", "job-aa-torn")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"job_id": "job-aa-torn", "spe')  # torn write
        claimed = queue.claim("s", 30.0)
        assert claimed.job_id == good.job_id       # the queue kept moving
        assert queue.n_quarantined == 1
        assert os.path.exists(torn + ".corrupt")
        assert not os.path.exists(torn)

    def test_load_prefers_terminal_states_and_raises_unknown(
            self, tmp_path):
        queue = _queue(tmp_path)
        record = queue.submit(_spec())
        claimed = queue.claim("s", 30.0)
        queue.complete(record.job_id, "s", {"fun": 2.0})
        queue._write_record("leased", claimed)     # stale shadow
        assert queue.load(record.job_id).state == "done"
        with pytest.raises(JobNotFound):
            queue.load("no-such-job")

    def test_live_job_ids_reports_pending_and_leased(self, tmp_path):
        root = tmp_path / "svc"
        queue = JobQueue(str(root / "queue"))
        a = queue.submit(_spec(), job_id="job-a")
        b = queue.submit(_spec(), job_id="job-b")
        queue.claim("s", 30.0)
        assert live_job_ids(str(root)) == ["job-a", "job-b"]
        queue.complete(a.job_id, "s", {})
        assert live_job_ids(str(root)) == ["job-b"]
        assert live_job_ids(str(tmp_path / "not-a-service")) == []


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(kind="nope")
        with pytest.raises(ValueError):
            JobSpec(algorithm="gradient_descent")
        with pytest.raises(ValueError):
            JobSpec(kind="experiment")          # no experiment named
        with pytest.raises(ValueError):
            JobSpec(checkpoint_every=0)
        with pytest.raises(ValueError):
            JobSpec(max_retries=-1)
        with pytest.raises(ValueError):
            JobSpec(deadline_s=0.0)

    def test_record_round_trip(self):
        spec = _spec(deadline_s=12.5, workers=2,
                     fault_injection={"p_exit": 0.1})
        record = JobRecord(job_id="job-x", spec=spec, submitted_at=1.0,
                           lease={"owner": "s", "expires_at": 2.0})
        clone = JobRecord.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert clone == record


# ----------------------------------------------------------------------
# the service end to end
# ----------------------------------------------------------------------

def _result_payload(client, job_id):
    return client.result(job_id)


class TestJobService:
    def test_submit_run_fetch(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(budget={"population_size": 10,
                                          "max_iterations": 12}, seed=3))
        with JobService(root, slots=2, lease_s=10.0,
                        recovery_interval_s=0.2) as service:
            record = service.wait(job.job_id, timeout=60.0)
        assert record.state == "done"
        assert record.result["n_iterations"] == 12
        payload = _result_payload(client, job.job_id)
        assert payload["result"]["fun"] == record.result["fun"]
        assert len(payload["result"]["history"]) == 13  # gen 0 + 12 iters

        run_dir = client.run_dir(job.job_id)
        journal = os.path.join(run_dir, "journal.jsonl")
        assert has_run_end(journal)
        replay = replay_journal(journal)
        assert replay.is_contiguous()
        assert len(replay.telemetry) == 13        # gen 0 + 12 iterations

    def test_record_accepted_as_job_handle(self, tmp_path):
        # submit()'s JobRecord passes straight back into wait/status/
        # result/run_dir/cancel — no .job_id plumbing required.
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(budget={"population_size": 8,
                                          "max_iterations": 4}))
        assert client.status(job).state == "pending"
        with JobService(root, slots=1) as service:
            record = service.wait(job, timeout=60.0)
        assert record.state == "done"
        payload = client.result(job)
        assert payload["result"]["fun"] == record.result["fun"]
        assert client.run_dir(job) == client.run_dir(job.job_id)

        cancelled = client.submit(_spec())
        assert client.cancel(cancelled) == "failed"
        assert client.status(cancelled).error == "cancelled"

    def test_particle_swarm_jobs_run_too(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(algorithm="particle_swarm",
                                  budget={"population_size": 8,
                                          "max_iterations": 6}))
        with JobService(root, slots=1) as service:
            record = service.wait(job.job_id, timeout=60.0)
        assert record.state == "done"
        assert record.result["n_iterations"] == 6

    def test_failing_job_is_retried_then_terminal(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(objective="bench.does_not_exist",
                                  max_retries=1))
        with JobService(root, slots=1, poll_interval_s=0.02,
                        recovery_interval_s=0.2) as service:
            record = service.wait(job.job_id, timeout=30.0)
            service_journal = service.service_run.journal_path
        assert record.state == "failed"
        assert record.attempt == 2                # initial try + 1 retry
        assert "KeyError" in record.error
        events = replay_journal(service_journal).counts()
        assert events.get("job_retried", 0) == 1
        assert events.get("job_failed", 0) == 1
        with pytest.raises(RuntimeError, match="KeyError"):
            client.result(job.job_id)

    def test_cancel_mid_run_is_terminal_and_cooperative(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(
            objective_params={"dim": 3, "delay_s": 0.02},
            budget={"population_size": 6, "max_iterations": 500}))
        with JobService(root, slots=1, poll_interval_s=0.02) as service:
            _wait_for_generations(client.run_dir(job.job_id), 1)
            client.cancel(job.job_id)
            record = service.wait(job.job_id, timeout=30.0)
        assert record.state == "failed"
        assert record.error == "cancelled"
        assert has_run_end(os.path.join(client.run_dir(job.job_id),
                                        "journal.jsonl"))

    def test_deadline_exceeded_fails_terminally(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(
            objective_params={"dim": 3, "delay_s": 0.03},
            budget={"population_size": 6, "max_iterations": 500},
            deadline_s=0.5, max_retries=3))
        with JobService(root, slots=1, poll_interval_s=0.02) as service:
            record = service.wait(job.job_id, timeout=30.0)
        assert record.state == "failed"
        assert record.error == "deadline"
        assert record.attempt == 1                # deadline burns no retries

    def test_drain_releases_and_resume_is_bit_identical(self, tmp_path):
        spec = _spec(objective_params={"dim": 4, "delay_s": 0.02},
                     budget={"population_size": 8, "max_iterations": 20},
                     seed=17)
        # Reference: the same job, never interrupted.
        ref_root = str(tmp_path / "ref")
        ref_client = ServiceClient(ref_root)
        ref_job = ref_client.submit(spec)
        with JobService(ref_root, slots=1) as service:
            service.wait(ref_job.job_id, timeout=120.0)
        reference = ref_client.result(ref_job.job_id)["result"]

        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(spec)
        service = JobService(root, slots=1, poll_interval_s=0.02)
        service.start()
        _wait_for_generations(client.run_dir(job.job_id), 3)
        service.stop()                            # drain mid-run

        released = client.status(job.job_id)
        assert released.state == "pending"        # back in the queue...
        assert released.attempt == 0              # ...without burning retries
        run_dir = client.run_dir(job.job_id)
        assert os.path.exists(os.path.join(run_dir, "checkpoint.ckpt"))
        # The drained service is a *finished* run, not an orphan.
        assert has_run_end(service.service_run.journal_path)

        with JobService(root, slots=1, poll_interval_s=0.02) as second:
            record = second.wait(job.job_id, timeout=120.0)
        assert record.state == "done"
        payload = client.result(job.job_id)
        assert payload["result"] == reference     # bit-identical resume
        replay = replay_journal(os.path.join(run_dir, "journal.jsonl"))
        assert replay.n_resumes >= 1
        assert replay.is_contiguous()

    def test_experiment_jobs_run_registered_drivers(self, tmp_path):
        calls = []

        class _Driver:
            @staticmethod
            def run(**kwargs):
                calls.append(kwargs)
                return {"score": 1.5, "label": "ok",
                        "payload": object()}      # non-JSON leaf dropped

        register_experiment("fake-driver", _Driver())
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(JobSpec(kind="experiment",
                                    experiment="fake-driver",
                                    experiment_kwargs={"alpha": 2}))
        with JobService(root, slots=1) as service:
            record = service.wait(job.job_id, timeout=30.0)
        assert record.state == "done"
        assert calls == [{"alpha": 2}]
        assert record.result["score"] == 1.5
        assert record.result["label"] == "ok"
        assert "payload" not in record.result
        # The fetch contract holds for experiment jobs too: a completed
        # job always has a result.json behind ServiceClient.result().
        payload = client.result(job)
        assert payload["result"]["score"] == 1.5
        assert payload["result"]["experiment"] == "fake-driver"

    def test_driver_submit_helpers_package_experiment_jobs(self, tmp_path):
        from repro.experiments import e5_optimizer_comparison as e5
        from repro.experiments import e6_tradeoff_front as e6
        from repro.experiments import e8_selected_design as e8

        root = str(tmp_path / "svc")
        records = [
            e5.submit(root, seed=3, deadline_s=600.0),
            e6.submit(root, n_points=2, workers=2),
            e8.submit(root, profile="fast"),
        ]
        assert [r.spec.experiment for r in records] == [
            "e5_optimizer_comparison", "e6_tradeoff_front",
            "e8_selected_design"]
        assert records[0].spec.experiment_kwargs["seed"] == 3
        assert records[0].spec.deadline_s == 600.0
        assert records[1].spec.experiment_kwargs["n_points"] == 2
        assert records[2].spec.experiment_kwargs["profile"] == "fast"
        client = ServiceClient(root)
        assert client.counts()["pending"] == 3


def _wait_for_generations(run_dir, n, timeout=30.0):
    """Poll until the run's journal holds >= n generation events."""
    journal = os.path.join(run_dir, "journal.jsonl")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(journal, "rb") as handle:
                count = handle.read().count(b'"event":"generation"')
        except OSError:
            count = 0
        if count >= n:
            return count
        time.sleep(0.01)
    raise AssertionError(
        f"journal never reached {n} generations within {timeout}s")


# ----------------------------------------------------------------------
# stale-segment helpers and gc
# ----------------------------------------------------------------------

def _dead_pid():
    """A pid guaranteed dead: fork a child that exits immediately."""
    process = multiprocessing.get_context("fork").Process(target=lambda: None)
    process.start()
    process.join()
    return process.pid


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="POSIX shared memory not mounted")
class TestStaleSegments:
    def test_stale_segment_detection_and_unlink(self):
        from multiprocessing import shared_memory
        name = f"repro-fleet-{_dead_pid()}-feed00-x"
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=64)
        segment.close()
        try:
            assert name in list_segments()
            assert segment_owner_pid(name) is not None
            assert name in stale_segments()
            assert unlink_segment(name)
        finally:
            unlink_segment(name)                  # idempotent cleanup
        assert name not in list_segments()
        assert not unlink_segment(name)           # already gone

    def test_live_owner_is_not_stale(self):
        from multiprocessing import shared_memory
        name = f"repro-fleet-{os.getpid()}-feed01-x"
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=64)
        try:
            assert name not in stale_segments()
        finally:
            segment.close()
            segment.unlink()

    def test_unparseable_names_are_left_alone(self):
        assert segment_owner_pid("repro-fleet-notapid-x") is None
        assert segment_owner_pid("unrelated") is None


class TestGcCommand:
    def _make_run(self, runs, run_id, finished):
        os.makedirs(os.path.join(runs, run_id))
        path = os.path.join(runs, run_id, "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"seq": 1, "event": "run_start"}) + "\n")
            if finished:
                handle.write(json.dumps({"seq": 2, "event": "run_end"})
                             + "\n")

    def test_find_orphan_runs_respects_trailer_and_protection(
            self, tmp_path):
        runs = str(tmp_path / "runs")
        self._make_run(runs, "crashed", finished=False)
        self._make_run(runs, "finished", finished=True)
        self._make_run(runs, "live-job", finished=False)
        os.makedirs(os.path.join(runs, "no-journal"))
        orphans = {o["run_id"]: o["reason"]
                   for o in find_orphan_runs(runs, protected=("live-job",))}
        assert set(orphans) == {"crashed", "no-journal"}
        assert "run_end" in orphans["crashed"]
        assert "journal" in orphans["no-journal"]

    def test_gc_reports_by_default_and_deletes_with_force(
            self, tmp_path, capsys):
        root = tmp_path / "svc"
        runs = str(root / "runs")
        self._make_run(runs, "crashed", finished=False)
        self._make_run(runs, "finished", finished=True)
        self._make_run(runs, "job-live", finished=False)
        queue = JobQueue(str(root / "queue"))
        queue.submit(_spec(), job_id="job-live")

        elsewhere = str(tmp_path / "elsewhere")
        assert obs_main(["--runs-root", elsewhere, "gc",
                         "--service", str(root), "--no-shm"]) == 0
        out = capsys.readouterr().out
        assert "crashed" in out and "report only" in out
        assert "job-live" not in out and "finished" not in out
        assert os.path.isdir(os.path.join(runs, "crashed"))

        assert obs_main(["--runs-root", elsewhere, "gc",
                         "--service", str(root), "--no-shm",
                         "--force"]) == 0
        assert not os.path.isdir(os.path.join(runs, "crashed"))
        assert os.path.isdir(os.path.join(runs, "finished"))
        assert os.path.isdir(os.path.join(runs, "job-live"))

    def test_gc_protects_implicit_sibling_queue(self, tmp_path, capsys):
        root = tmp_path / "svc"
        runs = str(root / "runs")
        self._make_run(runs, "job-live", finished=False)
        queue = JobQueue(str(root / "queue"))
        queue.submit(_spec(), job_id="job-live")
        assert obs_main(["--runs-root", runs, "gc", "--no-shm",
                         "--force"]) == 0
        assert os.path.isdir(os.path.join(runs, "job-live"))


# ----------------------------------------------------------------------
# the chaos soak
# ----------------------------------------------------------------------

def _service_forever(root):
    """Child-process main: run a service until SIGKILLed."""
    service = JobService(root, slots=1, lease_s=2.0,
                         poll_interval_s=0.02, recovery_interval_s=0.2)
    service.start()
    threading.Event().wait()                      # parked; SIGKILL only


_CHAOS_SPEC = dict(
    objective="bench.sphere",
    objective_params={"dim": 5, "delay_s": 0.015},
    budget={"population_size": 10, "max_iterations": 25},
    seed=11,
    workers=2,
    checkpoint_every=1,
    max_retries=2,
)


class TestChaosSoak:
    def test_sigkill_recovery_is_bit_identical_and_leak_free(
            self, tmp_path):
        """Kill the service mid-job; a fresh one must finish it exactly.

        The job runs on the worker fleet with ``p_exit`` fault injection
        (workers die at random mid-generation), and the service process
        itself is SIGKILLed once a few generations are durable.  The
        restarted service takes over the expired lease, resumes from
        the checkpoint, and the final payload must be byte-for-byte the
        uninterrupted run's; afterwards no ``/dev/shm`` segment of
        either process survives and ``repro-obs gc`` collects exactly
        the dead service's orphaned run directory.
        """
        # -- reference: same spec, no chaos, never interrupted ----------
        ref_root = str(tmp_path / "ref")
        ref_client = ServiceClient(ref_root)
        ref_job = ref_client.submit(
            JobSpec(fault_injection={"p_exit": 0.0}, **_CHAOS_SPEC))
        with JobService(ref_root, slots=1) as service:
            service.wait(ref_job.job_id, timeout=240.0)
        reference = ref_client.result(ref_job.job_id)["result"]

        # -- chaos run ---------------------------------------------------
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(
            JobSpec(fault_injection={"p_exit": 0.02, "seed": 3},
                    **_CHAOS_SPEC))
        child = multiprocessing.get_context("fork").Process(
            target=_service_forever, args=(root,))
        child.start()
        try:
            _wait_for_generations(client.run_dir(job.job_id), 4,
                                  timeout=120.0)
            os.kill(child.pid, signal.SIGKILL)    # no cleanup of any kind
        finally:
            child.join(10.0)
        assert not child.is_alive()

        leased = client.status(job.job_id)
        assert leased.state == "leased"           # wreckage, as expected

        # -- recovery ------------------------------------------------------
        with JobService(root, slots=1, lease_s=2.0, poll_interval_s=0.02,
                        recovery_interval_s=0.2) as second:
            record = second.wait(job.job_id, timeout=240.0)
            second_run = second.service_run
        assert record.state == "done"
        assert record.takeovers >= 1

        payload = client.result(job.job_id)
        assert payload["result"] == reference     # bit-identical recovery

        job_journal = os.path.join(client.run_dir(job.job_id),
                                   "journal.jsonl")
        replay = replay_journal(job_journal)
        assert replay.n_resumes >= 1
        assert replay.is_contiguous()
        assert len(replay.telemetry) == 26        # gen 0 + 25 iterations
        assert has_run_end(job_journal)

        # -- zero leaked shared memory -------------------------------------
        deadline = time.monotonic() + 30.0
        interesting = {child.pid, os.getpid()}
        while time.monotonic() < deadline:
            leaked = [name for name in list_segments()
                      if segment_owner_pid(name) in interesting]
            if not leaked:
                break
            # The orphan watchdog / resource tracker / janitor race to
            # clean up; give them a moment.
            for name in list(leaked):
                if name in stale_segments():
                    unlink_segment(name)
            time.sleep(0.2)
        assert leaked == []

        # -- gc collects exactly the dead service's run dir ----------------
        runs_root = os.path.join(root, "runs")
        orphans = find_orphan_runs(runs_root,
                                   protected=live_job_ids(root))
        orphan_ids = {o["run_id"] for o in orphans}
        assert job.job_id not in orphan_ids       # finished job is kept
        assert second_run.run_id not in orphan_ids  # drained service too
        assert len(orphan_ids) == 1               # the SIGKILLed service
        assert obs_main(["--runs-root", str(tmp_path / "elsewhere"),
                         "gc", "--service", root, "--no-shm",
                         "--force"]) == 0
        assert find_orphan_runs(runs_root,
                                protected=live_job_ids(root)) == []
        assert os.path.isdir(os.path.join(runs_root, job.job_id))
