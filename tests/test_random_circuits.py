"""Property-based tests on randomly generated passive circuits.

A random R/L/C mesh, whatever its topology, must come out of the MNA
solver reciprocal and passive, with a Hermitian positive-semidefinite
noise correlation; and when every resistor sits at T0 and the network
is matched-ish, the noise figure must never fall below 0 dB.  These
invariants catch sign errors in stamps and correlation assembly that
no hand-written example would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acsolver import assemble_tensor, solve_ac
from repro.analysis.compiled import (
    solve_ac_batch,
    solve_tensor_batch,
    solve_tensor_batch_isolated,
)
from repro.analysis.netlist import Circuit
from repro.analysis.sparsemna import MutableGroup, build_plan
from repro.rf.frequency import FrequencyGrid
from repro.util.constants import T0_KELVIN


def _random_passive_circuit(seed: int, value_rng=None) -> Circuit:
    """A random connected R/L/C network between two ports and ground.

    *seed* fixes the topology **and** the nominal element values; a
    *value_rng*, when given, rescales every value without touching the
    topology draw — circuits sharing a seed then form a same-topology
    batch with different element values.
    """
    rng = np.random.default_rng(seed)
    n_internal = int(rng.integers(1, 4))
    nodes = ["in", "out"] + [f"n{k}" for k in range(n_internal)] + ["gnd"]
    circuit = Circuit(f"random{seed}")
    circuit.port("p1", "in")
    circuit.port("p2", "out")

    # Spanning chain guarantees connectivity of every node to a port.
    chain = ["in"] + [f"n{k}" for k in range(n_internal)] + ["out"]
    element_id = 0

    def scale() -> float:
        if value_rng is None:
            return 1.0
        return float(value_rng.uniform(0.5, 2.0))

    def add_random_element(node_a, node_b):
        nonlocal element_id
        kind = rng.integers(3)
        name = f"E{element_id}"
        element_id += 1
        if kind == 0:
            circuit.resistor(name, node_a, node_b,
                             float(10 ** rng.uniform(0.5, 3.0)) * scale(),
                             temperature=T0_KELVIN)
        elif kind == 1:
            circuit.capacitor(name, node_a, node_b,
                              float(10 ** rng.uniform(-13, -10.5)) * scale())
        else:
            circuit.inductor(name, node_a, node_b,
                             float(10 ** rng.uniform(-9.5, -7.5)) * scale())

    for a, b in zip(chain[:-1], chain[1:]):
        add_random_element(a, b)
    # A few extra random edges, including to ground.
    n_extra = int(rng.integers(1, 5))
    for __ in range(n_extra):
        a, b = rng.choice(nodes, size=2, replace=False)
        add_random_element(a, b)
    # Ensure a resistive path to ground exists so the matrix is robust.
    circuit.resistor("Rgnd", str(rng.choice(chain)), "gnd", 500.0,
                     temperature=T0_KELVIN)
    return circuit


GRID = FrequencyGrid.logarithmic(0.2e9, 5e9, 6)


class TestRandomPassiveCircuits:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_reciprocal_and_passive(self, seed):
        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        network = result.as_twoport()
        assert network.is_reciprocal(tol=1e-8)
        assert network.is_passive(tol=1e-8)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_noise_correlation_hermitian_psd(self, seed):
        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        cy = result.cy
        np.testing.assert_allclose(
            cy, np.conjugate(np.swapaxes(cy, 1, 2)), atol=1e-30
        )
        eigenvalues = np.linalg.eigvalsh(cy)
        assert np.all(eigenvalues >= -1e-28)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_noise_figure_at_least_zero_db(self, seed):
        circuit = _random_passive_circuit(seed)
        noisy = solve_ac(circuit, GRID).as_noisy_twoport()
        # Any passive network at T0 has F >= 1 for any positive-real
        # source admittance.
        for ys in (1 / 50.0, 1 / 50.0 + 0.01j, 1 / 200.0 - 0.005j):
            assert np.all(noisy.noise_factor(ys) >= 1.0 - 1e-9)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_mna_noise_consistent_with_bosma(self, seed):
        # Independent check: CY of the whole passive network must equal
        # 2kT Re(Y_network) (Bosma's theorem) since everything sits at T0.
        from repro.util.constants import BOLTZMANN

        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        expected = 2.0 * BOLTZMANN * T0_KELVIN * result.y.real
        np.testing.assert_allclose(result.cy.real, expected, rtol=1e-6,
                                    atol=1e-32)
        np.testing.assert_allclose(result.cy.imag, 0.0, atol=1e-26)


class TestBatchedSolverEquivalence:
    """The batched MNA path must reproduce solve_ac candidate by candidate."""

    @staticmethod
    def _batch(seed: int, n: int = 4):
        return [
            _random_passive_circuit(seed,
                                    value_rng=np.random.default_rng(7000 + k))
            for k in range(n)
        ]

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_s_cy_and_transfers_match_scalar(self, seed):
        circuits = self._batch(seed)
        probes = ("out", "in")
        batch = solve_ac_batch(circuits, GRID, probe_nodes=probes)
        assert len(batch) == len(circuits)
        for i, circuit in enumerate(circuits):
            scalar = solve_ac(circuit, GRID, probe_nodes=probes)
            np.testing.assert_allclose(batch.s[i], scalar.s,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(batch.cy[i], scalar.cy,
                                       rtol=1e-9, atol=1e-40)
            np.testing.assert_allclose(batch.node_transfers[i],
                                       scalar.node_transfers,
                                       rtol=1e-9, atol=1e-12)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_candidate_view_round_trips(self, seed):
        circuits = self._batch(seed, n=3)
        batch = solve_ac_batch(circuits, GRID)
        view = batch.candidate(1)
        scalar = solve_ac(circuits[1], GRID)
        np.testing.assert_allclose(view.s, scalar.s, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(view.cy, scalar.cy, rtol=1e-9,
                                   atol=1e-40)
        assert view.port_names == scalar.port_names

    def test_rejects_mismatched_topology(self):
        circuits = [_random_passive_circuit(3), _random_passive_circuit(5)]
        with pytest.raises(ValueError):
            solve_ac_batch(circuits, GRID)


class TestSparseSolverEquivalence:
    """The condensed (sparse) tier must agree with dense to <= 1e-9."""

    @staticmethod
    def _batch(seed: int, n: int = 4):
        return [
            _random_passive_circuit(seed,
                                    value_rng=np.random.default_rng(9000 + k))
            for k in range(n)
        ]

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_sparse_matches_dense_on_random_ladders(self, seed):
        circuits = self._batch(seed)
        probes = ("out", "in")
        dense = solve_ac_batch(circuits, GRID, probe_nodes=probes,
                               solver="dense")
        sparse = solve_ac_batch(circuits, GRID, probe_nodes=probes,
                                solver="sparse")
        np.testing.assert_allclose(sparse.s, dense.s, rtol=1e-9, atol=1e-12)
        # cy entries span the batch's PSD scale down to pure
        # cancellation residue; the condensation reorders the
        # arithmetic, so absolute noise up to ~1e-13 of the dominant
        # entry is expected there, not a defect.
        np.testing.assert_allclose(sparse.cy, dense.cy, rtol=1e-9,
                                   atol=1e-13 * np.abs(dense.cy).max())
        np.testing.assert_allclose(sparse.node_transfers,
                                   dense.node_transfers,
                                   rtol=1e-9, atol=1e-12)

    def test_sparse_matches_dense_on_lna_template(self):
        from repro.core.amplifier import AmplifierTemplate, DesignVariables
        from repro.core.engine import CompiledTemplate
        from repro.experiments.common import reference_device

        template = AmplifierTemplate(reference_device().small_signal)
        dense = CompiledTemplate(template, solver="dense", verify=False)
        sparse = CompiledTemplate(template, solver="sparse", verify=False)
        pop = np.random.default_rng(7).random((8, len(DesignVariables.NAMES)))
        rd = dense.performance_batch(pop)
        rs = sparse.performance_batch(pop)
        for name in ("nf_db", "gt_db", "s11_db", "s22_db", "mu_min"):
            np.testing.assert_allclose(
                getattr(rs, name), getattr(rd, name), rtol=1e-9, atol=1e-9,
                err_msg=name,
            )

    def test_sparse_isolation_flags_singular_rows(self):
        # A batch whose candidates differ in a few entries (so the
        # sparse tier engages) with two rows made exactly singular:
        # the isolated wrapper must flag them and keep healthy rows.
        n_batch, n_nodes = 5, 4
        f = GRID.f_hz
        y = np.zeros((n_batch, f.size, n_nodes, n_nodes), dtype=complex)
        g_chain = 1.0 / 75.0
        for a, b in ((0, 2), (2, 3), (3, 1)):
            y[:, :, a, a] += g_chain
            y[:, :, b, b] += g_chain
            y[:, :, a, b] -= g_chain
            y[:, :, b, a] -= g_chain
        for i in range(n_batch):  # per-candidate shunt: the stamp hull
            y[i, :, 2, 2] += 1e-3 * (1.0 + 0.2 * i)
        singular = (1, 3)
        for i in singular:
            y[i] = 1.0
            y[i, :, 0, 0] -= 1.0 / 50.0
            y[i, :, 1, 1] -= 1.0 / 50.0
        ports = np.array([0, 1])
        before = y.copy()
        s, cy, _, failed = solve_tensor_batch_isolated(
            y, ports, 50.0, solver="sparse"
        )
        assert failed.tolist() == [False, True, False, True, False]
        assert np.all(s[list(singular)] == 0.0)
        np.testing.assert_array_equal(y, before)  # still non-mutating
        healthy = [0, 2, 4]
        s_ref, _, _ = solve_tensor_batch(y[healthy], ports, 50.0)
        np.testing.assert_allclose(s[healthy], s_ref, rtol=1e-9, atol=1e-12)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_sherman_morrison_matches_full_refactorization(self, seed):
        # One rank-1 group varying across the batch: the Woodbury
        # update must agree with per-candidate refactorization.
        circuit = _random_passive_circuit(seed)
        n_nodes = len(circuit.node_names)
        base = assemble_tensor(circuit, GRID.f_hz, n_nodes)
        ports = np.array([circuit.node_index("in"),
                          circuit.node_index("out")])
        rhs = np.zeros((n_nodes, 2), dtype=complex)
        rhs[ports[0], 0] = 1.0
        rhs[ports[1], 1] = 1.0
        group = MutableGroup("gshunt", np.array([ports[0]]),
                             np.array([ports[0]]), np.array([1.0]))
        plan = build_plan(base, [group], ports, 50.0, rhs,
                          out_rows=[int(p) for p in ports])
        rng = np.random.default_rng(seed)
        coeffs = {"gshunt": rng.uniform(1e-3, 2e-2, size=(6, 1))
                  * np.ones((1, GRID.f_hz.size))}
        full = plan.solve_rows(coeffs, 6, update="full")
        assert plan.last_update == "full"
        wood = plan.solve_rows(coeffs, 6, update="woodbury")
        assert plan.last_update == "woodbury"
        np.testing.assert_allclose(wood, full, rtol=1e-9, atol=1e-12)

        # Independent dense reference for the same perturbed batch.
        y = np.broadcast_to(base, (6,) + base.shape).copy()
        y[:, :, ports[0], ports[0]] += coeffs["gshunt"]
        y[:, :, ports[0], ports[0]] += 1.0 / 50.0
        y[:, :, ports[1], ports[1]] += 1.0 / 50.0
        x = np.linalg.solve(y, rhs)
        np.testing.assert_allclose(full, x[:, :, ports, :],
                                   rtol=1e-9, atol=1e-12)
