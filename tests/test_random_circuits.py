"""Property-based tests on randomly generated passive circuits.

A random R/L/C mesh, whatever its topology, must come out of the MNA
solver reciprocal and passive, with a Hermitian positive-semidefinite
noise correlation; and when every resistor sits at T0 and the network
is matched-ish, the noise figure must never fall below 0 dB.  These
invariants catch sign errors in stamps and correlation assembly that
no hand-written example would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.rf.frequency import FrequencyGrid
from repro.util.constants import T0_KELVIN


def _random_passive_circuit(seed: int) -> Circuit:
    """A random connected R/L/C network between two ports and ground."""
    rng = np.random.default_rng(seed)
    n_internal = int(rng.integers(1, 4))
    nodes = ["in", "out"] + [f"n{k}" for k in range(n_internal)] + ["gnd"]
    circuit = Circuit(f"random{seed}")
    circuit.port("p1", "in")
    circuit.port("p2", "out")

    # Spanning chain guarantees connectivity of every node to a port.
    chain = ["in"] + [f"n{k}" for k in range(n_internal)] + ["out"]
    element_id = 0

    def add_random_element(node_a, node_b):
        nonlocal element_id
        kind = rng.integers(3)
        name = f"E{element_id}"
        element_id += 1
        if kind == 0:
            circuit.resistor(name, node_a, node_b,
                             float(10 ** rng.uniform(0.5, 3.0)),
                             temperature=T0_KELVIN)
        elif kind == 1:
            circuit.capacitor(name, node_a, node_b,
                              float(10 ** rng.uniform(-13, -10.5)))
        else:
            circuit.inductor(name, node_a, node_b,
                             float(10 ** rng.uniform(-9.5, -7.5)))

    for a, b in zip(chain[:-1], chain[1:]):
        add_random_element(a, b)
    # A few extra random edges, including to ground.
    n_extra = int(rng.integers(1, 5))
    for __ in range(n_extra):
        a, b = rng.choice(nodes, size=2, replace=False)
        add_random_element(a, b)
    # Ensure a resistive path to ground exists so the matrix is robust.
    circuit.resistor("Rgnd", str(rng.choice(chain)), "gnd", 500.0,
                     temperature=T0_KELVIN)
    return circuit


GRID = FrequencyGrid.logarithmic(0.2e9, 5e9, 6)


class TestRandomPassiveCircuits:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_reciprocal_and_passive(self, seed):
        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        network = result.as_twoport()
        assert network.is_reciprocal(tol=1e-8)
        assert network.is_passive(tol=1e-8)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_noise_correlation_hermitian_psd(self, seed):
        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        cy = result.cy
        np.testing.assert_allclose(
            cy, np.conjugate(np.swapaxes(cy, 1, 2)), atol=1e-30
        )
        eigenvalues = np.linalg.eigvalsh(cy)
        assert np.all(eigenvalues >= -1e-28)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_noise_figure_at_least_zero_db(self, seed):
        circuit = _random_passive_circuit(seed)
        noisy = solve_ac(circuit, GRID).as_noisy_twoport()
        # Any passive network at T0 has F >= 1 for any positive-real
        # source admittance.
        for ys in (1 / 50.0, 1 / 50.0 + 0.01j, 1 / 200.0 - 0.005j):
            assert np.all(noisy.noise_factor(ys) >= 1.0 - 1e-9)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_mna_noise_consistent_with_bosma(self, seed):
        # Independent check: CY of the whole passive network must equal
        # 2kT Re(Y_network) (Bosma's theorem) since everything sits at T0.
        from repro.util.constants import BOLTZMANN

        circuit = _random_passive_circuit(seed)
        result = solve_ac(circuit, GRID)
        expected = 2.0 * BOLTZMANN * T0_KELVIN * result.y.real
        np.testing.assert_allclose(result.cy.real, expected, rtol=1e-6,
                                    atol=1e-32)
        np.testing.assert_allclose(result.cy.imag, 0.0, atol=1e-26)
