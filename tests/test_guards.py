"""Physical-invariant contracts and conditioning guards.

Covers the guard-mode machinery, each individual contract check, the
equilibrated-solve escalation path, and the end-to-end wiring: healthy
results are bit-for-bit unchanged under warn mode, unphysical results
are quarantined (warn) or raised (strict) at every trust boundary.
"""

import io
import warnings

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.experiments import e7_passive_dispersion as e7
from repro.experiments.common import reference_device
from repro.guards import (
    ContractViolation,
    GuardWarning,
    check_finite,
    check_frequency_grid,
    check_noise_correlation,
    check_noise_parameters,
    check_optimization_result,
    check_passive_network,
    check_passivity,
    check_reciprocity,
    check_stability_sanity,
    get_mode,
    guard_mode,
    noise_figure_violation_mask,
    report_violation,
    set_mode,
)
from repro.analysis.conditioning import condition_log10, equilibrated_solve
from repro.obs.metrics import Metrics, get_metrics, set_metrics
from repro.optimize.faults import CATEGORY_CONTRACT, retry_transient
from repro.passives.splitter import ResistiveSplitter, WilkinsonDivider
from repro.rf.frequency import FrequencyGrid
from repro.rf.touchstone import read_touchstone, write_touchstone


@pytest.fixture(scope="module")
def engine():
    return CompiledTemplate(
        AmplifierTemplate(reference_device().small_signal)
    )


@pytest.fixture()
def fresh_metrics():
    previous = get_metrics()
    metrics = Metrics()
    set_metrics(metrics)
    yield metrics
    set_metrics(previous)


def _passive_s(n_freq=4, scale=0.4, seed=0):
    """A random reciprocal, strictly passive 2-port batch."""
    rng = np.random.default_rng(seed)
    s = scale * (rng.standard_normal((n_freq, 2, 2))
                 + 1j * rng.standard_normal((n_freq, 2, 2)))
    s = 0.5 * (s + np.swapaxes(s, -1, -2))
    # Shrink until every frequency point is passive.
    while np.linalg.norm(s, ord=2, axis=(-2, -1)).max() >= 0.999:
        s *= 0.5
    return s


# ----------------------------------------------------------------------
# mode machinery
# ----------------------------------------------------------------------

class TestModes:
    def test_default_mode_is_warn(self):
        assert get_mode() == "warn"

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_mode("loud")

    def test_guard_mode_restores_on_exit(self):
        assert get_mode() == "warn"
        with guard_mode("strict"):
            assert get_mode() == "strict"
            with guard_mode("off"):
                assert get_mode() == "off"
            assert get_mode() == "strict"
        assert get_mode() == "warn"

    def test_off_mode_silences_everything(self, fresh_metrics):
        with guard_mode("off"):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                report_violation("passivity", "should be ignored")
        assert fresh_metrics.counter("guards.violations") == 0

    def test_warn_mode_counts_and_warns(self, fresh_metrics):
        with guard_mode("warn"):
            with pytest.warns(GuardWarning, match="boom"):
                report_violation("passivity", "boom")
        assert fresh_metrics.counter("guards.violations") == 1
        assert fresh_metrics.counter("guards.violations.passivity") == 1

    def test_strict_mode_raises(self, fresh_metrics):
        with guard_mode("strict"):
            with pytest.raises(ContractViolation, match="boom") as info:
                report_violation("reciprocity", "boom")
        assert info.value.contract == "reciprocity"
        assert fresh_metrics.counter("guards.violations.reciprocity") == 1

    def test_contract_violation_is_a_value_error(self):
        # Optimizers absorb ValueError into the failure taxonomy; a
        # violation escaping a candidate must not kill the whole run.
        assert issubclass(ContractViolation, ValueError)


# ----------------------------------------------------------------------
# individual contracts
# ----------------------------------------------------------------------

class TestContracts:
    def test_check_finite(self):
        check_finite(np.ones(3), "x")
        with guard_mode("strict"), pytest.raises(ContractViolation):
            check_finite(np.array([1.0, np.nan]), "x")
        with guard_mode("strict"), pytest.raises(ContractViolation):
            check_finite(np.array([1.0, np.inf]), "x")

    def test_frequency_grid(self):
        check_frequency_grid(np.array([1e9, 2e9, 3e9]), "grid")
        with guard_mode("strict"):
            with pytest.raises(ContractViolation):
                check_frequency_grid(np.array([1e9, 1e9, 2e9]), "grid")
            with pytest.raises(ContractViolation):
                check_frequency_grid(np.array([2e9, 1e9]), "grid")
            with pytest.raises(ContractViolation):
                check_frequency_grid(np.array([-1e9, 1e9]), "grid")

    def test_passivity_accepts_passive_flags_active(self):
        s = _passive_s()
        check_passivity(s, "net")
        with guard_mode("strict"), pytest.raises(ContractViolation,
                                                 match="passivity"):
            check_passivity(1.5 * s / np.abs(s).max(), "net")

    def test_reciprocity(self):
        s = _passive_s()
        check_reciprocity(s, "net")
        s_bad = s.copy()
        s_bad[:, 0, 1] *= 2.0
        with guard_mode("strict"), pytest.raises(ContractViolation,
                                                 match="reciprocity"):
            check_reciprocity(s_bad, "net")

    def test_noise_correlation_psd(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 2, 2)) + 1j * rng.standard_normal((3, 2, 2))
        cy = 1e-22 * (a @ np.conj(np.swapaxes(a, -1, -2)))
        check_noise_correlation(cy, "net")
        with guard_mode("strict"), pytest.raises(ContractViolation):
            check_noise_correlation(-cy, "net")

    def test_noise_parameters(self):
        fmin = np.array([1.2, 1.3])
        rn = np.array([8.0, 9.0])
        gamma = np.array([0.4 + 0.1j, 0.3 - 0.2j])
        check_noise_parameters(fmin, rn, gamma, "noise")
        with guard_mode("strict"):
            with pytest.raises(ContractViolation):
                check_noise_parameters(fmin, -rn, gamma, "noise")
            with pytest.raises(ContractViolation):
                check_noise_parameters(np.array([0.9, 1.3]), rn, gamma,
                                       "noise")
            with pytest.raises(ContractViolation):
                check_noise_parameters(fmin, rn, gamma * 4.0, "noise")

    def test_stability_sanity_on_consistent_data(self):
        s = _passive_s(scale=0.3, seed=3)
        check_stability_sanity(s, "net")  # passive => both verdicts stable

    def test_optimization_result_contract(self):
        check_optimization_result(np.ones(3), 1.5, "result")
        check_optimization_result(np.ones(3), np.inf, "result")  # legal
        with guard_mode("strict"):
            with pytest.raises(ContractViolation):
                check_optimization_result(np.array([1.0, np.nan]), 1.5,
                                          "result")
            with pytest.raises(ContractViolation):
                check_optimization_result(np.ones(3), np.nan, "result")

    def test_nf_violation_mask(self):
        nf = np.array([[1.0, 2.0], [0.5, -0.1], [np.nan, np.nan]])
        mask = noise_figure_violation_mask(nf)
        assert mask.tolist() == [False, True, False]


# ----------------------------------------------------------------------
# conditioning helpers
# ----------------------------------------------------------------------

class TestConditioning:
    def test_condition_log10_identity(self):
        assert condition_log10(np.eye(4, dtype=complex)) == pytest.approx(0.0)

    def test_condition_log10_singular_is_inf(self):
        assert condition_log10(np.zeros((3, 3), dtype=complex)) == np.inf

    def test_equilibrated_matches_plain_solve_when_healthy(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((5, 5)) + 1j * rng.standard_normal((5, 5))
        b = rng.standard_normal((5, 2)) + 0j
        np.testing.assert_allclose(equilibrated_solve(a, b),
                                   np.linalg.solve(a, b),
                                   rtol=1e-10, atol=1e-12)

    def test_equilibrated_handles_vector_rhs(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((4, 4)) + 0j
        b = rng.standard_normal(4) + 0j
        np.testing.assert_allclose(equilibrated_solve(a, b),
                                   np.linalg.solve(a, b),
                                   rtol=1e-10, atol=1e-12)

    def test_equilibrated_accurate_on_badly_scaled_system(self):
        # Row scales spanning 300 orders of magnitude: the kind of
        # matrix a pathological netlist (femto-ohm shorts next to
        # giga-ohm leakage) produces.  The equilibrated path must stay
        # accurate where the raw condition number is astronomically bad.
        scales = np.array([1e150, 1.0, 1e-150])
        rng = np.random.default_rng(9)
        base = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        a = scales[:, None] * base
        x_true = np.array([1.0 + 0j, 2.0, 3.0])
        b = a @ x_true
        x = equilibrated_solve(a, b)
        np.testing.assert_allclose(x, x_true, rtol=1e-9)


# ----------------------------------------------------------------------
# retry helper
# ----------------------------------------------------------------------

class TestRetryTransient:
    def test_succeeds_after_transient_failures(self, monkeypatch):
        import time as time_module

        sleeps = []
        monkeypatch.setattr(time_module, "sleep", sleeps.append)
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise OSError("busy")
            return "ok"

        assert retry_transient(flaky, attempts=3) == "ok"
        assert len(sleeps) == 2
        assert sleeps == sorted(sleeps)  # backoff grows

    def test_exhausted_attempts_reraise(self, monkeypatch):
        import time as time_module

        monkeypatch.setattr(time_module, "sleep", lambda s: None)

        def always_fails():
            raise OSError("busy")

        with pytest.raises(OSError):
            retry_transient(always_fails, attempts=2)

    def test_no_retry_exceptions_pass_straight_through(self):
        def missing():
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            retry_transient(missing, attempts=5)


# ----------------------------------------------------------------------
# trust boundaries, end to end
# ----------------------------------------------------------------------

class TestBoundaries:
    def test_splitters_pass_their_own_contract(self):
        grid = FrequencyGrid.linear(1.0e9, 2.0e9, 5)
        with guard_mode("strict"):
            ResistiveSplitter().solve(grid)
            WilkinsonDivider(1.57542e9).solve(grid)

    def test_touchstone_rejects_nonmonotone_grid(self):
        body = (
            "# GHz S RI R 50\n"
            "1.0 0.1 0 0.5 0 0.05 0 0.2 0\n"
            "0.9 0.1 0 0.5 0 0.05 0 0.2 0\n"
        )
        with guard_mode("strict"), pytest.raises(ContractViolation):
            read_touchstone(body)

    def test_touchstone_expect_passive_flags_active_data(self):
        body = (
            "# GHz S RI R 50\n"
            "1.0 0.1 0 2.0 0 0.05 0 0.2 0\n"   # |S21| = 2: gain
            "2.0 0.1 0 2.0 0 0.05 0 0.2 0\n"
        )
        read_touchstone(body)  # active device file: fine by default
        with guard_mode("strict"), pytest.raises(ContractViolation):
            read_touchstone(body, expect_passive=True)

    def test_touchstone_roundtrip_passes_strict(self):
        grid = FrequencyGrid.linear(1.0e9, 2.0e9, 4)
        data = ResistiveSplitter().solve(grid)
        # Reuse the 2x2 upper block as a passive two-port file.
        from repro.rf.twoport import TwoPort
        from repro.rf.touchstone import TouchstoneData

        two_port = TwoPort(grid, data.s[:, :2, :2], z0=50.0)
        text = write_touchstone(TouchstoneData(network=two_port))
        with guard_mode("strict"):
            read_touchstone(io.StringIO(text), expect_passive=True)

    def test_engine_healthy_rows_bit_for_bit_across_modes(self, engine):
        rng = np.random.default_rng(42)
        unit_x = rng.random((6, len(DesignVariables.NAMES)))
        with guard_mode("off"):
            baseline = engine.performance_batch(unit_x)
        with guard_mode("warn"):
            guarded = engine.performance_batch(unit_x)
        for field in ("nf_db", "gt_db", "s11_db", "s22_db", "mu_min",
                      "ids", "nf_max_db", "gt_min_db"):
            assert np.array_equal(getattr(baseline, field),
                                  getattr(guarded, field)), field

    def test_engine_isolated_healthy_rows_bit_for_bit(self, engine):
        rng = np.random.default_rng(43)
        unit_x = rng.random((4, len(DesignVariables.NAMES)))
        with guard_mode("off"):
            base_batch, base_failures, _ = engine.performance_batch_isolated(
                unit_x)
        with guard_mode("warn"):
            batch, failures, _ = engine.performance_batch_isolated(unit_x)
        assert failures == base_failures
        assert np.array_equal(batch.nf_db, base_batch.nf_db)
        assert np.array_equal(batch.gt_db, base_batch.gt_db)


class _ActiveSplitter(ResistiveSplitter):
    """A splitter whose S-matrix claims 6 dB of gain (unphysical)."""

    def solve(self, frequency):
        with guard_mode("off"):
            result = super().solve(frequency)
        result.s[:] = 0.0
        result.s[:, 1, 0] = 2.0
        result.s[:, 2, 0] = 2.0
        return result


class TestE7SplitterBoundary:
    def test_default_report_unchanged(self):
        result = e7.run(n_points=5)
        assert result.splitter_insertion_db is None
        report = e7.format_report(result)
        assert "split" not in report

    def test_healthy_splitter_reported(self):
        result = e7.run(n_points=5, splitter=ResistiveSplitter())
        # Matched star splitter: ~6 dB insertion loss on every port.
        assert np.allclose(result.splitter_insertion_db, -6.0, atol=0.1)
        assert "split S21 [dB]" in e7.format_report(result)

    def test_nonpassive_splitter_raises_in_strict(self):
        with guard_mode("strict"):
            with pytest.raises(ContractViolation, match="passivity"):
                e7.run(n_points=5, splitter=_ActiveSplitter())

    def test_nonpassive_splitter_quarantined_in_warn(self, fresh_metrics):
        with guard_mode("warn"):
            with pytest.warns(GuardWarning):
                result = e7.run(n_points=5, splitter=_ActiveSplitter())
        assert result.splitter_insertion_db is not None
        assert fresh_metrics.counter("guards.violations") >= 1
        assert fresh_metrics.counter("guards.violations.passivity") >= 1


class TestEngineContract:
    def test_contract_category_lands_in_failure_taxonomy(self):
        assert CATEGORY_CONTRACT == "contract"
