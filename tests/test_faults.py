"""Fault injection and absorption across the optimization runtime.

The contract under test: a candidate evaluation that raises, returns
NaN, or produces non-finite figures costs one penalty evaluation —
never the run.  Health counters must match the injected fault counts
exactly, and optimizers under 20% injected failures must still land on
the clean-run optimum.
"""

import numpy as np
import pytest

from repro.optimize import (
    EvaluationFailure,
    FaultInjector,
    InjectedFault,
    RunHealth,
    classify_exception,
    differential_evolution,
    guarded_call,
    nsga2,
    particle_swarm,
    simulated_annealing,
)
from repro.optimize.faults import (
    CATEGORY_DC,
    CATEGORY_EXCEPTION,
    CATEGORY_NON_FINITE,
    CATEGORY_SINGULAR,
)
from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.analysis.dc import DcConvergenceError


def sphere(x):
    return float(np.sum(np.asarray(x) ** 2))


# ----------------------------------------------------------------------
# taxonomy and guarded_call
# ----------------------------------------------------------------------

def test_classify_exception_categories():
    assert classify_exception(DcConvergenceError("no dc")) == CATEGORY_DC
    assert classify_exception(
        np.linalg.LinAlgError("Singular matrix")
    ) == CATEGORY_SINGULAR
    assert classify_exception(
        ValueError("matrix is singular at row 3")
    ) == CATEGORY_SINGULAR
    assert classify_exception(RuntimeError("boom")) == CATEGORY_EXCEPTION


def test_guarded_call_absorbs_and_counts():
    health = RunHealth()

    def bad(x):
        raise np.linalg.LinAlgError("Singular matrix")

    assert guarded_call(bad, np.zeros(2), health) == np.inf
    assert guarded_call(lambda x: np.nan, np.zeros(2), health) == np.inf
    assert guarded_call(sphere, np.ones(2), health) == 2.0
    assert health.failures == {CATEGORY_SINGULAR: 1, CATEGORY_NON_FINITE: 1}
    assert health.n_failures == 2


def test_guarded_call_propagates_keyboard_interrupt():
    def interrupt(x):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        guarded_call(interrupt, np.zeros(2), RunHealth())


def test_run_health_merge_and_roundtrip():
    a = RunHealth()
    a.record(CATEGORY_SINGULAR, 2)
    a.retries = 1
    b = RunHealth()
    b.record(CATEGORY_SINGULAR)
    b.record(CATEGORY_NON_FINITE, 3)
    b.pool_rebuilds = 2
    b.serial_fallback = True
    a.merge(b)
    assert a.failures == {CATEGORY_SINGULAR: 3, CATEGORY_NON_FINITE: 3}
    assert a.pool_rebuilds == 2 and a.serial_fallback

    restored = RunHealth()
    restored.restore(a.state())
    assert restored.failures == a.failures
    assert restored.retries == a.retries
    assert restored.as_dict()["n_failures"] == 6


def test_evaluation_failure_str():
    failure = EvaluationFailure("singular", "matrix is singular")
    assert "singular" in str(failure)


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------

def test_fault_injector_counts_match_behaviour():
    injector = FaultInjector(sphere, p_raise=0.3, p_nan=0.3, seed=7)
    raised = nans = clean = 0
    for _ in range(300):
        try:
            value = injector(np.ones(2))
        except InjectedFault:
            raised += 1
            continue
        if isinstance(value, float) and np.isnan(value):
            nans += 1
        else:
            clean += 1
    assert injector.n_calls == 300
    assert injector.n_raised == raised > 0
    assert injector.n_nan == nans > 0
    assert injector.n_injected == raised + nans
    assert clean == 300 - raised - nans


def test_fault_injector_validates_probabilities():
    with pytest.raises(ValueError):
        FaultInjector(sphere, p_raise=1.2)
    with pytest.raises(ValueError):
        FaultInjector(sphere, p_raise=0.6, p_nan=0.6)


def test_fault_injector_is_deterministic_under_seed():
    a = FaultInjector(sphere, p_raise=0.2, p_nan=0.2, seed=3)
    b = FaultInjector(sphere, p_raise=0.2, p_nan=0.2, seed=3)
    for _ in range(100):
        ra = rb = "ok"
        try:
            va = a(np.ones(2))
        except InjectedFault:
            ra = "raise"
            va = None
        try:
            vb = b(np.ones(2))
        except InjectedFault:
            rb = "raise"
            vb = None
        assert ra == rb
        if va is not None:
            assert np.array_equal(va, vb, equal_nan=True)


# ----------------------------------------------------------------------
# acceptance: optimizers under 20% injected failures
# ----------------------------------------------------------------------

def test_de_completes_and_matches_clean_run_under_faults():
    lower, upper = -np.ones(3), np.ones(3)
    clean = differential_evolution(
        sphere, lower, upper, population_size=20, max_iterations=150,
        seed=11,
    )
    injector = FaultInjector(sphere, p_raise=0.1, p_nan=0.1, seed=5)
    faulty = differential_evolution(
        injector, lower, upper, population_size=20, max_iterations=150,
        seed=11,
    )
    assert np.isfinite(faulty.fun)
    assert abs(faulty.fun - clean.fun) < 1e-6
    health = faulty.health
    assert health.failures.get(CATEGORY_EXCEPTION, 0) == injector.n_raised
    assert health.failures.get(CATEGORY_NON_FINITE, 0) == injector.n_nan
    assert health.n_failures == injector.n_injected > 0


def test_pso_completes_and_matches_clean_run_under_faults():
    lower, upper = -np.ones(3), np.ones(3)
    clean = particle_swarm(
        sphere, lower, upper, n_particles=25, max_iterations=200, seed=2,
    )
    injector = FaultInjector(sphere, p_raise=0.1, p_nan=0.1, seed=9)
    faulty = particle_swarm(
        injector, lower, upper, n_particles=25, max_iterations=200, seed=2,
    )
    assert np.isfinite(faulty.fun)
    assert abs(faulty.fun - clean.fun) < 1e-6
    health = faulty.health
    assert health.failures.get(CATEGORY_EXCEPTION, 0) == injector.n_raised
    assert health.failures.get(CATEGORY_NON_FINITE, 0) == injector.n_nan
    assert health.n_failures == injector.n_injected > 0


def test_sa_survives_nan_objective():
    calls = {"n": 0}

    def sometimes_nan(x):
        calls["n"] += 1
        if calls["n"] % 4 == 0:
            return np.nan
        return sphere(x)

    result = simulated_annealing(
        sometimes_nan, -np.ones(2), np.ones(2), max_iterations=300, seed=0,
    )
    assert np.isfinite(result.fun)
    assert result.health.failures.get(CATEGORY_NON_FINITE, 0) > 0


def test_nsga2_completes_with_counters_under_faults():
    def objectives(x):
        x = np.asarray(x, dtype=float)
        return np.array([float(np.sum(x ** 2)),
                         float(np.sum((x - 1.0) ** 2))])

    injector = FaultInjector(
        objectives, p_raise=0.1, p_nan=0.1,
        nan_value=np.full(2, np.nan), seed=4,
    )
    problem = MultiObjectiveProblem(
        objectives=injector, n_objectives=2,
        lower=np.zeros(2), upper=np.ones(2),
    )
    result = nsga2(problem, population_size=16, n_generations=12, seed=0)
    assert len(result.x) > 0
    assert np.all(np.isfinite(result.objectives))
    health = result.health
    assert health.failures.get(CATEGORY_EXCEPTION, 0) == injector.n_raised
    assert health.failures.get(CATEGORY_NON_FINITE, 0) == injector.n_nan
    assert health.n_failures == injector.n_injected > 0
    # Penalized candidates must not survive into the final front.
    assert np.all(result.objectives < 1.0e9)


def test_de_all_failures_still_terminates():
    def always_bad(x):
        raise RuntimeError("nothing works")

    result = differential_evolution(
        always_bad, -np.ones(2), np.ones(2), population_size=8,
        max_iterations=5, seed=0,
    )
    assert result.fun == np.inf
    assert result.health.n_failures == 8 * (1 + 5)


# ----------------------------------------------------------------------
# seeded-jitter backoff
# ----------------------------------------------------------------------

def test_backoff_delay_without_jitter_is_the_capped_schedule():
    from repro.optimize.faults import backoff_delay
    for attempt in range(8):
        assert backoff_delay(attempt, 0.1, 2.0, jitter=0.0) == \
            min(2.0, 0.1 * 2.0 ** attempt)


def test_backoff_delay_jitter_is_bounded_and_deterministic():
    from repro.optimize.faults import backoff_delay
    for attempt in range(8):
        undithered = min(2.0, 0.1 * 2.0 ** attempt)
        delay = backoff_delay(attempt, 0.1, 2.0, jitter=0.25, key="job-a")
        # Never above the capped schedule, never more than 25% below.
        assert 0.75 * undithered <= delay <= undithered
        # Same (key, attempt) -> same delay: no ambient RNG consumed.
        assert delay == backoff_delay(attempt, 0.1, 2.0, jitter=0.25,
                                      key="job-a")


def test_backoff_delay_desynchronizes_distinct_keys():
    from repro.optimize.faults import backoff_delay
    delays = {backoff_delay(2, 0.1, 2.0, key=f"job-{i}")
              for i in range(16)}
    assert len(delays) > 8      # a wave of retries spreads out


def test_backoff_delay_stays_monotone_below_the_cap():
    from repro.optimize.faults import backoff_delay
    # 0.1 * 2**k stays below the 2.0 cap through attempt 4; jitter of
    # 0.25 < 0.5 cannot make a doubled next delay fall below the
    # previous one, so the schedule keeps growing.
    delays = [backoff_delay(k, 0.1, 2.0, key="job-x") for k in range(5)]
    assert delays == sorted(delays)
    assert all(b > a for a, b in zip(delays, delays[1:]))


def test_retry_transient_sleeps_the_jittered_schedule(monkeypatch):
    import repro.optimize.faults as faults_mod
    from repro.optimize.faults import backoff_delay, retry_transient

    sleeps = []
    monkeypatch.setattr(faults_mod.time, "sleep", sleeps.append)
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("hiccup")
        return "ok"

    assert retry_transient(flaky, attempts=3, jitter_key="job-y") == "ok"
    assert sleeps == [backoff_delay(0, key="job-y"),
                      backoff_delay(1, key="job-y")]
