"""Fleet analytics: tail reader, run index, fleet view, warm starts,
Prometheus export, and the service telemetry plumbing.

Contracts under test:

* :func:`read_tail_events` — bounded backwards reads that survive torn
  tails, corrupt interior lines, and multi-block line spans;
* :class:`RunIndex` — journal → index round trip, per-run staleness
  (fingerprint / layout-version), torn-and-corrupt index recovery,
  compaction, and rebuild → byte-identical fleet summaries;
* :class:`FleetView` — filters, roll-ups, convergence envelopes,
  leaderboards, and config-distance nearest-run ranking over a registry
  mixing finished, failed, in-flight, and orphaned runs;
* warm starts — ``final_population`` tail loading, the journaled
  ``warmstart_decision`` on every outcome, and the optimizers'
  ``initial_population=`` seeding (deterministic, RNG-stream
  preserving);
* the ``repro-obs`` CLI — ``fleet`` subcommands, bounded ``tail``,
  ``compare --summary-json``, and the empty-metric-name rejection;
* Prometheus export — exposition format, atomic textfiles, the HTTP
  endpoint, and the job service's live queue-depth / per-job progress
  gauges riding the lease records.
"""

from __future__ import annotations

import json
import os
import time
import urllib.request

import numpy as np
import pytest

from repro.obs.analytics import (
    INDEX_NAME,
    FleetView,
    RunIndex,
    config_distance,
    index_entry_from_journal,
    journal_fingerprint,
    load_final_population,
    warm_start_population,
)
from repro.obs.cli import _parse_counter, _parse_tolerance
from repro.obs.cli import main as cli_main
from repro.obs.journal import (
    RunJournal,
    config_fingerprint,
    read_events,
    read_tail_events,
    replay_journal,
    set_journal,
)
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.promexport import (
    CONTENT_TYPE,
    PromExporter,
    render_prometheus,
)
from repro.obs.runs import RunRegistry
from repro.obs.telemetry import GenerationRecord
from repro.obs.tracer import Tracer, set_tracer
from repro.optimize.metaheuristics import (
    _seed_population,
    differential_evolution,
    particle_swarm,
)
from repro.optimize.nsga2 import MultiObjectiveProblem, nsga2
from repro.service import JobQueue, JobService, JobSpec, ServiceClient


@pytest.fixture()
def fresh_globals():
    tracer = Tracer(enabled=False)
    metrics = Metrics()
    old_tracer = set_tracer(tracer)
    old_metrics = set_metrics(metrics)
    old_journal = set_journal(None)
    yield tracer, metrics
    set_tracer(old_tracer)
    set_metrics(old_metrics)
    set_journal(old_journal)


def sphere(x):
    x = np.asarray(x, dtype=float)
    return float(np.sum(x * x))


def make_run(root, run_id, *, algorithm="differential_evolution",
             config=None, n_generations=4, best0=4.0, step=1.0,
             status="completed", final_population=None, fitness=None,
             failures=None, n_failures=0, trailer=True):
    """Write one synthetic-but-wellformed run directory under *root*."""
    run_path = os.path.join(str(root), run_id)
    os.makedirs(run_path, exist_ok=True)
    journal_path = os.path.join(run_path, "journal.jsonl")
    journal = RunJournal(journal_path, run_id=run_id)
    journal.run_start(config=config, seeds={"seed": 0})
    for g in range(n_generations):
        best = best0 - step * g
        journal(GenerationRecord(
            algorithm=algorithm, generation=g, nfev=(g + 1) * 8,
            best=float(best), mean=float(best) + 0.5, spread=0.1,
            wall_time_s=0.01, n_failures=n_failures,
        ))
    if failures:
        journal.append("health", **{
            f"failures.{category}": count
            for category, count in failures.items()
        })
    if final_population is not None:
        journal.append(
            "final_population", algorithm=algorithm,
            population=[[float(v) for v in row]
                        for row in final_population],
            fitness=(None if fitness is None
                     else [float(v) for v in fitness]),
        )
    if trailer:
        journal.run_end(status=status, metrics=Metrics())
    journal.close()
    return journal_path


# ----------------------------------------------------------------------
# bounded tail reads
# ----------------------------------------------------------------------

class TestReadTailEvents:
    def _journal(self, tmp_path, n=50):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, run_id="tail") as journal:
            for i in range(n):
                journal.append("tick", i=i)
        return path

    def test_last_n_in_file_order(self, tmp_path):
        path = self._journal(tmp_path)
        events, truncated = read_tail_events(path, 3)
        assert [e["i"] for e in events] == [47, 48, 49]
        assert not truncated

    def test_small_blocks_span_lines(self, tmp_path):
        # A block size smaller than one line forces the carry logic to
        # stitch every line across several backwards reads.
        path = self._journal(tmp_path, n=30)
        events, truncated = read_tail_events(path, 30, block_size=7)
        assert [e["i"] for e in events] == list(range(30))
        assert not truncated
        reference, _, _ = read_events(path)
        assert events == reference

    def test_event_filter_skips_cheaply(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, run_id="f") as journal:
            for i in range(10):
                journal.append("tick", i=i)
                journal.append("tock", i=i)
        events, _ = read_tail_events(path, 2, event="tick")
        assert [(e["event"], e["i"]) for e in events] == [
            ("tick", 8), ("tick", 9)]

    def test_torn_tail_is_dropped_and_flagged(self, tmp_path):
        path = self._journal(tmp_path, n=5)
        with open(path, "ab") as handle:
            handle.write(b'{"seq":99,"event":"tick","i":')  # no newline
        events, truncated = read_tail_events(path, 10)
        assert truncated
        assert [e["i"] for e in events] == [0, 1, 2, 3, 4]

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        path = self._journal(tmp_path, n=4)
        raw = open(path, "rb").read().split(b"\n")
        raw[2] = b"\x00garbage\xff"
        open(path, "wb").write(b"\n".join(raw))
        events, truncated = read_tail_events(path, 10)
        assert [e["i"] for e in events] == [0, 1, 3]
        assert not truncated

    def test_n_nonpositive_and_short_files(self, tmp_path):
        path = self._journal(tmp_path, n=3)
        assert read_tail_events(path, 0) == ([], False)
        events, _ = read_tail_events(path, 100)
        assert len(events) == 3
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert read_tail_events(str(empty), 5) == ([], False)


# ----------------------------------------------------------------------
# registry ordering
# ----------------------------------------------------------------------

class TestRegistryOrdering:
    def test_list_runs_skips_non_run_entries(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        for run_id in ("run-b", "run-a"):
            os.makedirs(tmp_path / run_id)
        (tmp_path / INDEX_NAME).write_text("{}\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / "_scratch").mkdir()
        (tmp_path / "stray.txt").write_text("not a run\n")
        runs = registry.list_runs()
        assert set(runs) == {"run-a", "run-b"}

    def test_creation_order_and_latest(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        assert registry.latest() is None
        names = ["zulu", "alpha", "mike"]
        for name in names:
            os.makedirs(tmp_path / name)
            (tmp_path / name / "journal.jsonl").write_text("{}\n")
            time.sleep(0.01)  # distinct ctime_ns on coarse filesystems
        assert registry.list_runs() == names
        assert registry.latest().run_id == "mike"
        # Appending to an older run's existing journal touches the file
        # inode, not the directory's: the order must not change.
        with open(tmp_path / "zulu" / "journal.jsonl", "a") as handle:
            handle.write("{}\n")
        assert registry.latest().run_id == "mike"

    def test_missing_root_is_empty(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "nowhere"))
        assert registry.list_runs() == []
        assert registry.latest() is None


# ----------------------------------------------------------------------
# the run index
# ----------------------------------------------------------------------

class TestRunIndex:
    def test_journal_to_entry_round_trip(self, tmp_path, fresh_globals):
        config = {"experiment": "e5", "seed": 3}
        path = make_run(tmp_path, "r1", config=config,
                        final_population=[[0.1, 0.2], [0.3, 0.4]],
                        fitness=[1.0, 2.0],
                        failures={"singular": 2})
        entry = index_entry_from_journal(path, "r1")
        assert entry["run_id"] == "r1"
        assert entry["status"] == "completed"
        assert entry["experiment"] == "e5"
        assert entry["config"] == config
        assert entry["config_fingerprint"] == config_fingerprint(config)
        assert entry["n_generations"] == 4
        assert entry["best_per_generation"] == [4.0, 3.0, 2.0, 1.0]
        assert entry["final_best"] == 1.0
        assert entry["total_nfev"] == 32
        assert entry["failures"] == {"singular": 2}
        assert entry["final_population"] == {
            "algorithm": "differential_evolution", "n": 2}
        assert entry["fingerprint"] == journal_fingerprint(path)

    def test_refresh_is_incremental(self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1", config={"experiment": "e5"})
        make_run(tmp_path, "r2", config={"experiment": "e6"})
        index = RunIndex(str(tmp_path))
        index.refresh()
        assert index.last_refresh == {"n_runs": 2, "n_reindexed": 2,
                                      "n_removed": 0, "n_corrupt": 0}
        index.refresh()
        assert index.last_refresh["n_reindexed"] == 0

    def test_stale_fingerprint_reindexes_only_that_run(
            self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1")
        path2 = make_run(tmp_path, "r2")
        index = RunIndex(str(tmp_path))
        index.refresh()
        with RunJournal(path2, run_id="r2") as journal:
            journal(GenerationRecord(
                algorithm="differential_evolution", generation=4,
                nfev=40, best=0.5, mean=1.0, spread=0.1,
                wall_time_s=0.01))
        index.refresh()
        assert index.last_refresh["n_reindexed"] == 1
        entries = index.entries(refresh=False)
        assert entries["r2"]["n_generations"] == 5
        assert entries["r1"]["n_generations"] == 4

    def test_layout_version_mismatch_reindexes(
            self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1")
        index = RunIndex(str(tmp_path))
        entries = index.refresh()
        stale = dict(entries["r1"])
        stale["index_version"] = 0
        index._rewrite({"r1": stale})
        index.refresh()
        assert index.last_refresh["n_reindexed"] == 1
        assert index.entries(refresh=False)["r1"]["index_version"] == 1

    def test_torn_index_tail_recovers(self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1")
        make_run(tmp_path, "r2")
        index = RunIndex(str(tmp_path))
        before = index.refresh()
        with open(index.path, "ab") as handle:
            handle.write(b'{"v":1,"crc":12,"run_id":"r2","entry"')
        index.refresh()
        assert index.last_refresh["n_corrupt"] == 1
        assert index.entries(refresh=False) == before
        # Recovery compacted the file: the torn line is gone for good.
        index.refresh()
        assert index.last_refresh["n_corrupt"] == 0

    def test_bitflipped_line_fails_crc_and_rederives(
            self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1", best0=4.0)
        index = RunIndex(str(tmp_path))
        before = index.refresh()["r1"]
        raw = open(index.path, "rb").read()
        # Flip a digit inside the framed entry: the frame still parses
        # as JSON, so only the CRC can catch the damage.
        forged = raw.replace(b'"final_best":1.0', b'"final_best":9.0')
        assert forged != raw
        open(index.path, "wb").write(forged)
        after = index.refresh()["r1"]
        assert index.last_refresh["n_corrupt"] == 1
        assert after == before
        assert after["final_best"] == 1.0

    def test_deleted_run_drops_out(self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1")
        make_run(tmp_path, "r2")
        index = RunIndex(str(tmp_path))
        index.refresh()
        import shutil
        shutil.rmtree(tmp_path / "r2")
        entries = index.refresh()
        assert set(entries) == {"r1"}
        assert index.last_refresh["n_removed"] == 1
        assert set(index.entries(refresh=False)) == {"r1"}

    def test_dead_lines_trigger_compaction(self, tmp_path, fresh_globals):
        path = make_run(tmp_path, "r1")
        index = RunIndex(str(tmp_path))
        for i in range(4):
            with RunJournal(path, run_id="r1") as journal:
                journal.append("tick", i=i)
            index.refresh()
        lines = [line for line in
                 open(index.path, "rb").read().split(b"\n") if line]
        assert len(lines) == 1  # superseded appends were compacted away

    def test_rebuild_gives_byte_identical_summaries(
            self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1", config={"experiment": "e5"},
                 failures={"singular": 1})
        make_run(tmp_path, "r2", config={"experiment": "e6"},
                 status="failed")
        make_run(tmp_path, "r3", trailer=False)  # in-flight
        view = FleetView(str(tmp_path))
        before = json.dumps(view.summary(), sort_keys=True)
        index = RunIndex(str(tmp_path))
        index.rebuild()
        after = json.dumps(FleetView(index=index, refresh=False).summary(),
                           sort_keys=True)
        assert after == before

    def test_missing_index_file_is_rebuilt_silently(
            self, tmp_path, fresh_globals):
        make_run(tmp_path, "r1")
        index = RunIndex(str(tmp_path))
        entries = index.refresh()
        os.unlink(index.path)
        assert index.refresh() == entries


# ----------------------------------------------------------------------
# fleet queries
# ----------------------------------------------------------------------

@pytest.fixture()
def mixed_fleet(tmp_path, fresh_globals):
    """A registry mixing finished, failed, in-flight, and orphaned runs."""
    root = tmp_path / "runs"
    make_run(root, "de-good", config={"experiment": "e5", "seed": 0},
             best0=4.0, final_population=[[0.0, 0.0]], fitness=[0.5])
    make_run(root, "de-better", config={"experiment": "e5", "seed": 1},
             best0=3.0, n_generations=6,
             final_population=[[0.1, 0.1], [0.2, 0.2]], fitness=[2.0, 1.0])
    make_run(root, "nsga", algorithm="nsga2",
             config={"experiment": "e12", "seed": 0}, best0=2.0,
             final_population=[[0.3, 0.3]], fitness=[1.5])
    make_run(root, "crashed", config={"experiment": "e5", "seed": 2},
             status="failed", failures={"singular": 3}, n_failures=3)
    make_run(root, "inflight", config={"experiment": "e5", "seed": 3},
             trailer=False)
    os.makedirs(root / "orphan-no-journal")  # never indexed
    return str(root)


class TestFleetView:
    def test_summary_counts_the_mixed_registry(self, mixed_fleet):
        summary = FleetView(mixed_fleet).summary()
        assert summary["n_runs"] == 5  # the journal-less orphan is out
        assert summary["by_status"] == {"completed": 3, "failed": 1,
                                        "incomplete": 1}
        assert summary["by_algorithm"]["differential_evolution"] == 4
        assert summary["by_algorithm"]["nsga2"] == 1
        assert summary["by_experiment"] == {"e5": 4, "e12": 1}
        # Best comes from *completed* runs only; de-better's 6
        # generations bottom out at 3.0 - 5 = -2.0, beating the rest.
        assert summary["best"]["run_id"] == "de-better"
        assert summary["best"]["final_best"] == -2.0
        assert summary["failures"]["by_category"] == {"singular": 3}

    def test_filters_compose(self, mixed_fleet):
        view = FleetView(mixed_fleet)
        assert [e["run_id"] for e in view.runs(algorithm="nsga2")] == \
            ["nsga"]
        e5 = view.runs(experiment="e5", status="completed")
        assert sorted(e["run_id"] for e in e5) == ["de-better", "de-good"]
        fingerprint = config_fingerprint({"experiment": "e5", "seed": 1})
        assert [e["run_id"]
                for e in view.runs(config_fingerprint=fingerprint)] == \
            ["de-better"]
        assert view.summary(experiment="e12")["n_runs"] == 1

    def test_failures_rollup(self, mixed_fleet):
        failures = FleetView(mixed_fleet).failures()
        assert failures["total"] == 3
        assert failures["runs_with_failures"] == 1
        assert failures["worst_runs"][0] == {"run_id": "crashed",
                                             "n_failures": 3}

    def test_envelopes_resample_onto_common_grid(self, mixed_fleet):
        envelopes = FleetView(mixed_fleet).envelopes(
            n_grid=5, status="completed")
        de = envelopes["differential_evolution"]
        assert de["n_runs"] == 2
        assert len(de["median"]) == 5
        # Monotone-decreasing inputs stay monotone after resampling.
        assert de["median"] == sorted(de["median"], reverse=True)
        assert envelopes["nsga2"]["n_runs"] == 1

    def test_envelopes_skip_nonfinite_curves(self, tmp_path,
                                             fresh_globals):
        root = tmp_path / "runs"
        make_run(root, "bad", best0=float("inf"), step=0.0)
        assert FleetView(str(root)).envelopes() == {}

    def test_top_ranks_ascending_and_deterministic(self, mixed_fleet):
        rows = FleetView(mixed_fleet).top(n=2, status="completed")
        assert [row["run_id"] for row in rows] == ["de-better", "nsga"]
        assert rows[0]["final_best"] == -2.0

    def test_nearest_runs_exact_match_is_distance_zero(self, mixed_fleet):
        view = FleetView(mixed_fleet)
        ranked = view.nearest_runs({"experiment": "e5", "seed": 0}, n=3)
        assert ranked[0][0] == 0.0
        assert ranked[0][1]["run_id"] == "de-good"
        assert all(d0 <= d1 for (d0, _), (d1, _)
                   in zip(ranked, ranked[1:]))

    def test_nearest_runs_filters(self, mixed_fleet):
        view = FleetView(mixed_fleet)
        ranked = view.nearest_runs({"experiment": "e12", "seed": 0},
                                   algorithm="nsga2",
                                   require_population=True)
        assert [entry["run_id"] for _, entry in ranked] == ["nsga"]
        assert view.nearest_runs(None) == []  # no config: nothing near


class TestConfigDistance:
    def test_identity_and_missing(self):
        assert config_distance({"a": 1}, {"a": 1}) == 0.0
        assert config_distance({}, {}) == 0.0
        assert config_distance(None, {"a": 1}) == float("inf")
        assert config_distance({"a": 1}, None) == float("inf")

    def test_numeric_and_categorical_terms(self):
        # One key, numeric: |1-3|/(1+1+3) = 0.4.
        assert config_distance({"a": 1}, {"a": 3}) == \
            pytest.approx(0.4)
        # Categorical mismatch costs 1, one-sided keys 0.25.
        assert config_distance({"m": "de"}, {"m": "pso"}) == 1.0
        assert config_distance({"a": 1, "b": 2}, {"a": 1}) == \
            pytest.approx(0.125)
        # Bools are categorical, not numeric: True vs 0 is a mismatch,
        # not a normalized |1-0| difference.
        assert config_distance({"x": True}, {"x": 0}) == 1.0


# ----------------------------------------------------------------------
# warm starts
# ----------------------------------------------------------------------

class TestWarmStart:
    def test_load_final_population(self, tmp_path, fresh_globals):
        path = make_run(tmp_path, "r1",
                        final_population=[[1.0, 2.0], [3.0, 4.0]],
                        fitness=[0.2, 0.1])
        payload = load_final_population(path)
        assert payload["algorithm"] == "differential_evolution"
        np.testing.assert_array_equal(
            payload["population"], [[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(payload["fitness"], [0.2, 0.1])

    def test_load_final_population_absent_or_damaged(
            self, tmp_path, fresh_globals):
        assert load_final_population(
            make_run(tmp_path, "plain")) is None
        assert load_final_population(
            str(tmp_path / "missing.jsonl")) is None
        path = str(tmp_path / "bad" / "journal.jsonl")
        os.makedirs(tmp_path / "bad")
        with RunJournal(path, run_id="bad") as journal:
            journal.append("final_population", algorithm="de",
                           population=[[1.0], [None]])
        assert load_final_population(path) is None

    def test_accepted_warm_start_sorts_truncates_and_journals(
            self, tmp_path, fresh_globals):
        root = tmp_path / "runs"
        config = {"experiment": "e5", "seed": 0}
        make_run(root, "archive", config=config,
                 final_population=[[3.0, 3.0], [1.0, 1.0], [2.0, 2.0]],
                 fitness=[30.0, 10.0, 20.0])
        receiver = str(tmp_path / "receiver.jsonl")
        with RunJournal(receiver, run_id="recv") as journal:
            set_journal(journal)
            seeds = warm_start_population(config, str(root),
                                          population_size=2)
            set_journal(None)
        np.testing.assert_array_equal(seeds, [[1.0, 1.0], [2.0, 2.0]])
        (decision,), _ = read_tail_events(receiver, 1,
                                          event="warmstart_decision")
        assert decision["accepted"] is True
        assert decision["source_run"] == "archive"
        assert decision["distance"] == 0.0
        assert decision["n_seeded"] == 2
        # The receiving run's own index entry tallies the decision.
        entry = index_entry_from_journal(receiver, "recv")
        assert entry["decisions"]["warmstart_decision"] == {"accepted": 1}

    def test_empty_fleet_declines_and_journals(self, tmp_path,
                                               fresh_globals):
        receiver = str(tmp_path / "receiver.jsonl")
        with RunJournal(receiver, run_id="recv") as journal:
            set_journal(journal)
            seeds = warm_start_population({"seed": 0},
                                          str(tmp_path / "runs"))
            set_journal(None)
        assert seeds is None
        (decision,), _ = read_tail_events(receiver, 1,
                                          event="warmstart_decision")
        assert decision["accepted"] is False
        assert decision["n_candidates"] == 0

    def test_max_distance_rejects_far_archives(self, tmp_path,
                                               fresh_globals):
        root = tmp_path / "runs"
        make_run(root, "far", config={"m": "something-else"},
                 final_population=[[1.0, 1.0]], fitness=[1.0])
        seeds = warm_start_population({"m": "de"}, str(root),
                                      max_distance=0.5)
        assert seeds is None


class TestOptimizerSeeding:
    def test_seed_population_clips_and_validates(self):
        lower = np.zeros(2)
        upper = np.ones(2)
        population = np.full((4, 2), 0.5)
        seeded = _seed_population(population, [[2.0, -1.0]], lower, upper)
        np.testing.assert_array_equal(seeded[0], [1.0, 0.0])
        np.testing.assert_array_equal(seeded[1], [0.5, 0.5])
        with pytest.raises(ValueError, match="initial_population"):
            _seed_population(population, [[1.0, 2.0, 3.0]], lower, upper)

    def test_de_warm_start_is_deterministic_and_journals_population(
            self, tmp_path, fresh_globals):
        lower, upper = [-2.0, -2.0], [2.0, 2.0]
        seeds = np.array([[0.05, 0.05], [0.1, -0.1]])
        kwargs = dict(population_size=8, max_iterations=15, seed=7)
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, run_id="warm") as journal:
            set_journal(journal)
            warm = differential_evolution(sphere, lower, upper,
                                          initial_population=seeds,
                                          **kwargs)
            set_journal(None)
        rerun = differential_evolution(sphere, lower, upper,
                                       initial_population=seeds, **kwargs)
        assert warm.fun == rerun.fun
        np.testing.assert_array_equal(warm.x, rerun.x)
        cold = differential_evolution(sphere, lower, upper, **kwargs)
        assert warm.fun <= cold.fun  # seeded near the optimum
        (event,), _ = read_tail_events(path, 1, event="final_population")
        assert event["algorithm"] == "differential_evolution"
        assert len(event["population"]) == 8
        assert len(event["fitness"]) == 8

    def test_pso_and_nsga2_accept_initial_population(self,
                                                     fresh_globals):
        seeds = np.array([[0.01, 0.01]])
        result = particle_swarm(sphere, [-1, -1], [1, 1], n_particles=6,
                                max_iterations=10, seed=3,
                                initial_population=seeds)
        assert result.fun <= sphere(seeds[0])

        problem = MultiObjectiveProblem(
            objectives=lambda x: np.array([sphere(x),
                                           sphere(x - 0.5)]),
            n_objectives=2,
            lower=np.array([-1.0, -1.0]),
            upper=np.array([1.0, 1.0]),
        )
        front = nsga2(problem, population_size=8, n_generations=5,
                      seed=3, initial_population=np.array([[0.2, 0.2]]))
        assert front.x.shape[1] == 2


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------

class TestFleetCli:
    def test_fleet_summary_json(self, mixed_fleet, capsys):
        assert cli_main(["--runs-root", mixed_fleet,
                         "fleet", "summary", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_runs"] == 5
        assert summary["by_status"]["completed"] == 3

    def test_fleet_summary_filtered_text(self, mixed_fleet, capsys):
        assert cli_main(["--runs-root", mixed_fleet, "fleet", "summary",
                         "--experiment", "e5"]) == 0
        out = capsys.readouterr().out
        assert "runs        : 4" in out

    def test_fleet_top_curves_failures(self, mixed_fleet, capsys):
        assert cli_main(["--runs-root", mixed_fleet, "fleet", "top",
                         "-n", "1", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["run_id"] == "de-better"
        assert cli_main(["--runs-root", mixed_fleet, "fleet", "curves",
                         "--grid", "4", "--json"]) == 0
        envelopes = json.loads(capsys.readouterr().out)
        assert len(envelopes["nsga2"]["grid"]) == 4
        assert cli_main(["--runs-root", mixed_fleet, "fleet",
                         "failures", "--json"]) == 0
        failures = json.loads(capsys.readouterr().out)
        assert failures["total"] == 3

    def test_fleet_rebuild_flag(self, mixed_fleet, capsys):
        index_path = os.path.join(mixed_fleet, INDEX_NAME)
        FleetView(mixed_fleet)  # seed the index
        open(index_path, "ab").write(b"torn")
        assert cli_main(["--runs-root", mixed_fleet, "fleet", "summary",
                         "--rebuild", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["n_runs"] == 5

    def test_tail_prints_last_events(self, tmp_path, fresh_globals,
                                     capsys):
        path = make_run(tmp_path, "r1")
        assert cli_main(["tail", path, "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["event"] == "run_end"

    def test_tail_reports_torn_tail(self, tmp_path, fresh_globals,
                                    capsys):
        path = make_run(tmp_path, "r1")
        open(path, "ab").write(b'{"seq":9,"event":"gener')
        assert cli_main(["tail", path, "-n", "3"]) == 0
        assert "truncated tail" in capsys.readouterr().err

    def test_tail_follow_exits_on_run_end(self, tmp_path, fresh_globals,
                                          capsys):
        # The run already carries its trailer: follow returns at once.
        path = make_run(tmp_path, "r1")
        assert cli_main(["tail", path, "-n", "5", "--follow",
                         "--poll", "0.01"]) == 0

    def test_compare_summary_json_archives_the_check_table(
            self, tmp_path, fresh_globals, capsys):
        baseline = make_run(tmp_path / "a", "base", best0=4.0)
        candidate = make_run(tmp_path / "b", "cand", best0=4.0)
        out_path = str(tmp_path / "diff.json")
        assert cli_main(["compare", baseline, candidate,
                         "--summary-json", out_path]) == 0
        table = json.loads(open(out_path).read())
        assert table["ok"] is True
        assert any(check["name"] == "final_best"
                   for check in table["checks"])

    def test_summary_json_written_even_on_regression(
            self, tmp_path, fresh_globals, capsys):
        baseline = make_run(tmp_path / "a", "base", best0=4.0)
        worse = make_run(tmp_path / "b", "cand", best0=40.0)
        out_path = str(tmp_path / "diff.json")
        assert cli_main(["compare", baseline, worse,
                         "--summary-json", out_path]) == 1
        assert json.loads(open(out_path).read())["ok"] is False

    def test_empty_metric_names_are_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError,
                           match="empty metric name"):
            _parse_tolerance("=rel:0.05")
        with pytest.raises(argparse.ArgumentTypeError,
                           match="empty counter name"):
            _parse_counter("  =0.15")
        # Well-formed specs still parse.
        assert _parse_counter("speedup=0.15") == ("speedup", 0.15)


# ----------------------------------------------------------------------
# Prometheus export
# ----------------------------------------------------------------------

class TestPromExport:
    def _metrics(self):
        metrics = Metrics()
        metrics.inc("evaluator.cache_hits", 7)
        metrics.gauge("service.eval_per_s", 123.5)
        return metrics

    def test_render_counters_and_gauges(self):
        text = render_prometheus(self._metrics())
        assert "# TYPE repro_evaluator_cache_hits_total counter" in text
        assert "repro_evaluator_cache_hits_total 7" in text
        assert "# TYPE repro_service_eval_per_s gauge" in text
        assert "repro_service_eval_per_s 123.5" in text
        assert text.endswith("\n")

    def test_collector_samples_and_label_escaping(self):
        def collector():
            yield ("queue_depth", {"state": 'pen"ding\n'}, 3)
            yield ("queue_depth", {"state": "leased"}, 1)

        text = render_prometheus(Metrics(), collectors=[collector])
        assert text.count("# TYPE repro_queue_depth gauge") == 1
        assert r'repro_queue_depth{state="pen\"ding\n"} 3' in text
        assert 'repro_queue_depth{state="leased"} 1' in text

    def test_dead_collector_is_swallowed(self):
        def dead():
            raise RuntimeError("queue torn down")

        text = render_prometheus(self._metrics(), collectors=[dead])
        assert "repro_evaluator_cache_hits_total 7" in text

    def test_textfile_snapshot_is_atomic(self, tmp_path):
        exporter = PromExporter(metrics=self._metrics())
        target = str(tmp_path / "drop" / "repro.prom")
        exporter.write_textfile(target)
        assert open(target).read() == exporter.render()
        assert [f for f in os.listdir(tmp_path / "drop")] == ["repro.prom"]

    def test_http_endpoint_serves_current_rendering(self):
        metrics = self._metrics()
        with PromExporter(metrics=metrics) as exporter:
            port = exporter.serve(port=0)
            assert exporter.port == port
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert "repro_evaluator_cache_hits_total 7" in body
            metrics.inc("evaluator.cache_hits", 1)
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/") as response:
                assert b"_cache_hits_total 8" in response.read()
        assert exporter.port is None  # closed


# ----------------------------------------------------------------------
# service telemetry
# ----------------------------------------------------------------------

def _spec(**overrides):
    base = dict(objective="bench.sphere", objective_params={"dim": 3},
                budget={"population_size": 8, "max_iterations": 5},
                seed=5)
    base.update(overrides)
    return JobSpec(**base)


class TestServiceTelemetry:
    def test_renew_piggybacks_progress(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        record = queue.submit(_spec())
        queue.claim("slot0", lease_s=30.0)
        assert queue.leased_progress() == {}
        queue.renew(record.job_id, "slot0", 30.0,
                    progress={"generation": 3, "nfev": 120, "best": 1.5})
        progress = queue.leased_progress()
        assert progress[record.job_id] == {"generation": 3, "nfev": 120,
                                           "best": 1.5}
        queue.complete(record.job_id, "slot0", {"fun": 1.0})
        assert queue.leased_progress() == {}

    def test_jobservice_prometheus_soak(self, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        job = client.submit(_spec(
            objective_params={"dim": 3, "delay_s": 0.01},
            budget={"population_size": 6, "max_iterations": 400}))
        textfile = str(tmp_path / "prom" / "repro.prom")
        with JobService(root, slots=1, poll_interval_s=0.02,
                        prom_port=0, prom_textfile=textfile) as service:
            port = service.exporter.port
            assert port
            url = f"http://127.0.0.1:{port}/metrics"
            deadline = time.time() + 60.0
            body = ""
            while time.time() < deadline:
                with urllib.request.urlopen(url) as response:
                    body = response.read().decode("utf-8")
                if "repro_run_generation{" in body:
                    break
                time.sleep(0.05)
            # Queue depth by state is always exposed; per-job progress
            # gauges appear once the runner's first heartbeat lands.
            assert "# TYPE repro_service_queue_depth gauge" in body
            assert 'repro_service_queue_depth{state="leased"} 1' in body
            assert f'repro_run_generation{{job="{job.job_id}"}}' in body
            assert f'repro_run_nfev{{job="{job.job_id}"}}' in body
            assert f'repro_run_best{{job="{job.job_id}"}}' in body
            client.cancel(job.job_id)
            service.wait(job.job_id, timeout=60.0)
        # The supervisor's final sweep left an atomic textfile behind.
        snapshot = open(textfile).read()
        assert "repro_service_queue_depth" in snapshot
