"""Monte-Carlo yield-analysis tests (repro.core.tolerance)."""

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.tolerance import ToleranceSpec, monte_carlo_yield


@pytest.fixture(scope="module")
def template():
    from repro.devices.reference import make_reference_device

    return AmplifierTemplate(make_reference_device().small_signal)


class TestToleranceSpec:
    def test_presets_ordered(self):
        assert ToleranceSpec.tight().inductor < ToleranceSpec().inductor
        assert ToleranceSpec().inductor < ToleranceSpec.loose().inductor


class TestMonteCarloYield:
    def test_zero_tolerance_gives_unit_yield(self, template):
        spec = ToleranceSpec(inductor=0.0, capacitor=0.0, resistor=0.0,
                             vgs_volts=0.0, vds_volts=0.0)
        # The default design has GTmin ~12 dB; judge it against a
        # shipping limit it meets so zero tolerance must pass always.
        result = monte_carlo_yield(template, DesignVariables(),
                                   tolerances=spec, n_trials=3, seed=0,
                                   gt_ship_limit_db=11.0)
        assert result.yield_fraction == 1.0
        np.testing.assert_allclose(result.nf_max_db,
                                   result.nf_max_db[0])

    def test_reproducible_with_seed(self, template):
        a = monte_carlo_yield(template, DesignVariables(), n_trials=5,
                              seed=4)
        b = monte_carlo_yield(template, DesignVariables(), n_trials=5,
                              seed=4)
        np.testing.assert_array_equal(a.nf_max_db, b.nf_max_db)

    def test_tight_tolerances_spread_less(self, template):
        tight = monte_carlo_yield(template, DesignVariables(),
                                  tolerances=ToleranceSpec.tight(),
                                  n_trials=12, seed=1,
                                  gt_ship_limit_db=11.0)
        loose = monte_carlo_yield(template, DesignVariables(),
                                  tolerances=ToleranceSpec.loose(),
                                  n_trials=12, seed=1,
                                  gt_ship_limit_db=11.0)
        assert np.std(tight.gt_min_db) < np.std(loose.gt_min_db)
        assert tight.yield_fraction >= loose.yield_fraction

    def test_failure_accounting_consistent(self, template):
        result = monte_carlo_yield(template, DesignVariables(),
                                   tolerances=ToleranceSpec.loose(),
                                   n_trials=10, seed=2,
                                   nf_ship_limit_db=0.1)  # force NF fails
        assert result.n_pass == 0
        assert result.failures["nf"] == 10

    def test_percentiles(self, template):
        result = monte_carlo_yield(template, DesignVariables(),
                                   n_trials=8, seed=3)
        p5 = result.percentile("gt_min_db", 5)
        p95 = result.percentile("gt_min_db", 95)
        assert p5 <= p95
