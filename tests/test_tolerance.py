"""Monte-Carlo yield-analysis tests (repro.core.tolerance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import CompiledTemplate
from repro.core.tolerance import ToleranceSpec, monte_carlo_yield


@pytest.fixture(scope="module")
def template():
    from repro.devices.reference import make_reference_device

    return AmplifierTemplate(make_reference_device().small_signal)


@pytest.fixture(scope="module")
def fast_compiled(template):
    """One compiled engine shared across the batched-engine tests."""
    return CompiledTemplate(template, design_grid(5), stability_grid(6),
                            verify=False, solver="auto")


class TestToleranceSpec:
    def test_presets_ordered(self):
        assert ToleranceSpec.tight().inductor < ToleranceSpec().inductor
        assert ToleranceSpec().inductor < ToleranceSpec.loose().inductor

    def test_rejects_negative_by_name(self):
        with pytest.raises(ValueError, match="capacitor"):
            ToleranceSpec(capacitor=-0.01)
        with pytest.raises(ValueError, match="vds_volts"):
            ToleranceSpec(vds_volts=-0.1)

    def test_rejects_non_finite_by_name(self):
        with pytest.raises(ValueError, match="vgs_volts"):
            ToleranceSpec(vgs_volts=float("nan"))
        with pytest.raises(ValueError, match="inductor"):
            ToleranceSpec(inductor=float("inf"))

    def test_rejects_relative_half_width_of_one(self):
        with pytest.raises(ValueError, match="resistor"):
            ToleranceSpec(resistor=1.0)
        # Absolute (volt) fields are not bound by the < 1 rule.
        assert ToleranceSpec(vds_volts=1.5).vds_volts == 1.5


class TestMonteCarloYield:
    def test_zero_tolerance_gives_unit_yield(self, template):
        spec = ToleranceSpec(inductor=0.0, capacitor=0.0, resistor=0.0,
                             vgs_volts=0.0, vds_volts=0.0)
        # The default design has GTmin ~12 dB; judge it against a
        # shipping limit it meets so zero tolerance must pass always.
        result = monte_carlo_yield(template, DesignVariables(),
                                   tolerances=spec, n_trials=3, seed=0,
                                   gt_ship_limit_db=11.0)
        assert result.yield_fraction == 1.0
        np.testing.assert_allclose(result.nf_max_db,
                                   result.nf_max_db[0])

    def test_reproducible_with_seed(self, template):
        a = monte_carlo_yield(template, DesignVariables(), n_trials=5,
                              seed=4)
        b = monte_carlo_yield(template, DesignVariables(), n_trials=5,
                              seed=4)
        np.testing.assert_array_equal(a.nf_max_db, b.nf_max_db)

    def test_tight_tolerances_spread_less(self, template):
        tight = monte_carlo_yield(template, DesignVariables(),
                                  tolerances=ToleranceSpec.tight(),
                                  n_trials=12, seed=1,
                                  gt_ship_limit_db=11.0)
        loose = monte_carlo_yield(template, DesignVariables(),
                                  tolerances=ToleranceSpec.loose(),
                                  n_trials=12, seed=1,
                                  gt_ship_limit_db=11.0)
        assert np.std(tight.gt_min_db) < np.std(loose.gt_min_db)
        assert tight.yield_fraction >= loose.yield_fraction

    def test_failure_accounting_consistent(self, template):
        result = monte_carlo_yield(template, DesignVariables(),
                                   tolerances=ToleranceSpec.loose(),
                                   n_trials=10, seed=2,
                                   nf_ship_limit_db=0.1)  # force NF fails
        assert result.n_pass == 0
        assert result.failures["nf"] == 10

    def test_percentiles(self, template):
        result = monte_carlo_yield(template, DesignVariables(),
                                   n_trials=8, seed=3)
        p5 = result.percentile("gt_min_db", 5)
        p95 = result.percentile("gt_min_db", 95)
        assert p5 <= p95

    def test_percentile_rejects_unknown_quantity(self, template):
        result = monte_carlo_yield(template, DesignVariables(),
                                   n_trials=3, seed=0)
        with pytest.raises(ValueError,
                           match="valid quantities: nf_max_db"):
            result.percentile("s11_db", 50.0)


class TestBatchedEngine:
    def test_batched_matches_scalar_reference(self, template,
                                              fast_compiled):
        kwargs = dict(n_trials=16, seed=7, gt_ship_limit_db=11.0,
                      band_grid=design_grid(5),
                      guard_grid=stability_grid(6))
        batched = monte_carlo_yield(template, DesignVariables(),
                                    engine="batched",
                                    compiled=fast_compiled, **kwargs)
        scalar = monte_carlo_yield(template, DesignVariables(),
                                   engine="scalar", **kwargs)
        np.testing.assert_allclose(batched.nf_max_db, scalar.nf_max_db,
                                   atol=1e-9)
        np.testing.assert_allclose(batched.gt_min_db, scalar.gt_min_db,
                                   atol=1e-9)
        np.testing.assert_allclose(batched.mu_min, scalar.mu_min,
                                   atol=1e-9)
        assert batched.n_pass == scalar.n_pass
        assert batched.failures == scalar.failures

    def test_unknown_engine_rejected(self, template):
        with pytest.raises(ValueError, match="unknown engine"):
            monte_carlo_yield(template, DesignVariables(), n_trials=2,
                              engine="spice")

    @settings(max_examples=8, derandomize=True, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_yield_monotone_in_tolerance_width(self, template,
                                               fast_compiled, seed):
        """Tight parts never ship worse than default, default never
        worse than loose — for any seed, same RNG stream throughout."""
        def run(tolerances):
            return monte_carlo_yield(
                template, DesignVariables(), tolerances=tolerances,
                n_trials=8, seed=seed, gt_ship_limit_db=11.0,
                compiled=fast_compiled).yield_fraction

        tight = run(ToleranceSpec.tight())
        default = run(ToleranceSpec())
        loose = run(ToleranceSpec.loose())
        assert tight >= default >= loose
