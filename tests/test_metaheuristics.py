"""Metaheuristic optimizer tests (repro.optimize.metaheuristics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.metaheuristics import (
    differential_evolution,
    latin_hypercube,
    particle_swarm,
    simulated_annealing,
)


def sphere(x):
    return float(np.sum(x**2))

def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)

def rastrigin(x):
    return float(10 * x.size + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))


BOUNDS_2D = (np.array([-5.0, -5.0]), np.array([5.0, 5.0]))


class TestLatinHypercube:
    def test_stratification(self):
        rng = np.random.default_rng(0)
        samples = latin_hypercube(10, [0.0], [1.0], rng)
        # One sample per decile.
        bins = np.floor(samples[:, 0] * 10).astype(int)
        assert sorted(bins) == list(range(10))

    def test_within_bounds(self):
        rng = np.random.default_rng(1)
        samples = latin_hypercube(50, [-2.0, 10.0], [2.0, 20.0], rng)
        assert np.all(samples[:, 0] >= -2) and np.all(samples[:, 0] <= 2)
        assert np.all(samples[:, 1] >= 10) and np.all(samples[:, 1] <= 20)

    def test_bad_bounds_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            latin_hypercube(5, [1.0], [0.0], rng)


class TestDifferentialEvolution:
    def test_solves_sphere(self):
        result = differential_evolution(sphere, *BOUNDS_2D, seed=0,
                                        max_iterations=150)
        assert result.fun < 1e-8
        np.testing.assert_allclose(result.x, 0.0, atol=1e-3)

    def test_solves_rosenbrock(self):
        result = differential_evolution(rosenbrock, *BOUNDS_2D, seed=0,
                                        max_iterations=400)
        np.testing.assert_allclose(result.x, 1.0, atol=1e-2)

    def test_solves_multimodal_rastrigin(self):
        result = differential_evolution(rastrigin, *BOUNDS_2D, seed=3,
                                        population_size=40,
                                        max_iterations=400)
        assert result.fun < 1e-3  # global optimum, not a local one

    def test_deterministic_given_seed(self):
        a = differential_evolution(rosenbrock, *BOUNDS_2D, seed=7,
                                   max_iterations=50)
        b = differential_evolution(rosenbrock, *BOUNDS_2D, seed=7,
                                   max_iterations=50)
        np.testing.assert_array_equal(a.x, b.x)
        assert a.nfev == b.nfev

    def test_initial_point_seeded_into_population(self):
        # Starting at the optimum must never be lost (greedy selection).
        result = differential_evolution(sphere, *BOUNDS_2D, seed=0,
                                        max_iterations=5,
                                        initial=np.zeros(2))
        assert result.fun <= 1e-12

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_solution_within_bounds(self, seed):
        lower = np.array([0.5, -3.0])
        upper = np.array([0.7, -2.0])
        result = differential_evolution(sphere, lower, upper, seed=seed,
                                        max_iterations=20)
        assert np.all(result.x >= lower) and np.all(result.x <= upper)

    def test_history_monotone_nonincreasing(self):
        result = differential_evolution(rosenbrock, *BOUNDS_2D, seed=1,
                                        max_iterations=60)
        history = np.asarray(result.history)
        assert np.all(np.diff(history) <= 1e-15)

    def test_nfev_accounting(self):
        result = differential_evolution(sphere, *BOUNDS_2D, seed=2,
                                        population_size=10,
                                        max_iterations=10,
                                        tolerance=0.0)
        assert result.nfev == 10 + 10 * 10


class TestParticleSwarm:
    def test_solves_sphere(self):
        result = particle_swarm(sphere, *BOUNDS_2D, seed=0,
                                max_iterations=200)
        assert result.fun < 1e-6

    def test_deterministic_given_seed(self):
        a = particle_swarm(rosenbrock, *BOUNDS_2D, seed=5,
                           max_iterations=40)
        b = particle_swarm(rosenbrock, *BOUNDS_2D, seed=5,
                           max_iterations=40)
        np.testing.assert_array_equal(a.x, b.x)

    def test_respects_bounds(self):
        lower = np.array([1.0, 1.0])
        upper = np.array([2.0, 2.0])
        result = particle_swarm(sphere, lower, upper, seed=1,
                                max_iterations=50)
        assert np.all(result.x >= lower) and np.all(result.x <= upper)
        # Constrained optimum is the corner (1, 1).
        np.testing.assert_allclose(result.x, 1.0, atol=1e-6)


class TestSimulatedAnnealing:
    def test_solves_sphere(self):
        result = simulated_annealing(sphere, *BOUNDS_2D, seed=0,
                                     max_iterations=6000)
        assert result.fun < 1e-3

    def test_initial_point_accepted(self):
        result = simulated_annealing(sphere, *BOUNDS_2D, seed=0,
                                     max_iterations=100,
                                     initial=np.array([0.0, 0.0]))
        assert result.fun <= 1e-12

    def test_deterministic_given_seed(self):
        a = simulated_annealing(rosenbrock, *BOUNDS_2D, seed=9,
                                max_iterations=500)
        b = simulated_annealing(rosenbrock, *BOUNDS_2D, seed=9,
                                max_iterations=500)
        np.testing.assert_array_equal(a.x, b.x)


class TestArgumentValidation:
    def test_non_finite_bounds_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            differential_evolution(sphere, np.array([-1.0, np.nan]),
                                   np.array([1.0, 1.0]), seed=0)
        with pytest.raises(ValueError, match="finite"):
            particle_swarm(sphere, np.array([-1.0, -1.0]),
                           np.array([1.0, np.inf]), seed=0)
        with pytest.raises(ValueError, match="finite"):
            simulated_annealing(sphere, np.array([-np.inf, -1.0]),
                                np.array([1.0, 1.0]), seed=0)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            differential_evolution(sphere, np.zeros(2), np.ones(3), seed=0)

    @pytest.mark.parametrize("bad_workers", [0, -2])
    def test_non_positive_workers_rejected(self, bad_workers):
        with pytest.raises(ValueError, match="workers"):
            differential_evolution(sphere, *BOUNDS_2D, seed=0,
                                   workers=bad_workers)

    @pytest.mark.parametrize("bad_workers", [1.5, True, "2"])
    def test_non_integer_workers_rejected(self, bad_workers):
        with pytest.raises(TypeError, match="workers"):
            particle_swarm(sphere, *BOUNDS_2D, seed=0,
                           workers=bad_workers)
