"""NSGA-II tests (repro.optimize.nsga2)."""

import numpy as np
import pytest

from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.optimize.nsga2 import nsga2
from repro.optimize.pareto import pareto_filter


def zdt1_like(dim=5):
    """A ZDT1-style problem: front at g(x)=1, f2 = 1 - sqrt(f1)."""

    def objectives(x):
        f1 = x[0]
        g = 1.0 + 9.0 * np.mean(x[1:])
        f2 = g * (1.0 - np.sqrt(max(f1, 0.0) / g))
        return np.array([f1, f2])

    return MultiObjectiveProblem(
        objectives=objectives,
        n_objectives=2,
        lower=np.zeros(dim),
        upper=np.ones(dim),
    )


def constrained_biobjective():
    return MultiObjectiveProblem(
        objectives=lambda x: np.array([
            (x[0] - 1) ** 2 + x[1] ** 2,
            (x[0] + 1) ** 2 + x[1] ** 2,
        ]),
        n_objectives=2,
        lower=np.array([-3.0, -3.0]),
        upper=np.array([3.0, 3.0]),
        constraints=lambda x: np.array([0.25 - x[0]]),
    )


class TestNsga2:
    def test_converges_to_zdt1_front(self):
        result = nsga2(zdt1_like(), population_size=40, n_generations=60,
                       seed=0)
        front = result.feasible_front
        assert front.shape[0] >= 10
        # On the true front f2 = 1 - sqrt(f1): check mean deviation.
        deviation = front[:, 1] - (1.0 - np.sqrt(np.clip(front[:, 0], 0, 1)))
        assert np.mean(np.abs(deviation)) < 0.08

    def test_front_is_nondominated(self):
        result = nsga2(zdt1_like(), population_size=24, n_generations=20,
                       seed=1)
        front = result.objectives
        keep = pareto_filter(front)
        assert len(keep) == front.shape[0]

    def test_front_spreads(self):
        result = nsga2(zdt1_like(), population_size=40, n_generations=60,
                       seed=0)
        f1 = result.feasible_front[:, 0]
        assert f1.max() - f1.min() > 0.5  # crowding keeps diversity

    def test_deterministic_under_seed(self):
        a = nsga2(zdt1_like(), population_size=16, n_generations=10, seed=3)
        b = nsga2(zdt1_like(), population_size=16, n_generations=10, seed=3)
        np.testing.assert_array_equal(a.x, b.x)

    def test_constraints_respected(self):
        result = nsga2(constrained_biobjective(), population_size=30,
                       n_generations=40, seed=0)
        feasible = result.violations <= 1e-9
        assert np.any(feasible)
        assert np.all(result.x[feasible, 0] >= 0.25 - 1e-9)

    def test_bounds_respected(self):
        result = nsga2(zdt1_like(), population_size=16, n_generations=10,
                       seed=5)
        assert np.all(result.x >= 0.0) and np.all(result.x <= 1.0)

    def test_odd_population_rounded_up(self):
        result = nsga2(zdt1_like(), population_size=15, n_generations=5,
                       seed=0)
        assert result.nfev > 0

    def test_nfev_accounting(self):
        result = nsga2(zdt1_like(), population_size=16, n_generations=10,
                       seed=0)
        assert result.nfev == 16 + 10 * 16
