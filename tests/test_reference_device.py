"""Golden-device and dataset tests (repro.devices.reference/datasets)."""

import numpy as np
import pytest

from repro.devices.datasets import BiasPoint, DeviceDataset, IVDataset
from repro.devices.reference import ReferencePHEMT, make_reference_device
from repro.rf.frequency import FrequencyGrid


class TestGoldenDC:
    def test_positive_gds_in_saturation(self, golden_device):
        for vgs in (0.40, 0.52, 0.65):
            assert float(golden_device.dc.gds(vgs, 3.0)) > 0

    def test_target_current_class(self, golden_device):
        # ATF-54143-class: tens of mA at the design bias.
        ids = float(golden_device.dc.ids(0.60, 3.0))
        assert 0.02 < ids < 0.10

    def test_compression_below_pure_angelov(self, golden_device):
        pure = golden_device.dc.angelov.ids(0.6, 3.0)
        compressed = golden_device.dc.ids(0.6, 3.0)
        assert compressed < pure

    def test_enhancement_mode(self, golden_device):
        # Negligible current at Vgs = 0 (enhancement pHEMT).
        assert float(golden_device.dc.ids(0.0, 3.0)) < 2e-3


class TestDatasets:
    def test_iv_dataset_shapes(self, golden_device):
        iv = golden_device.iv_dataset()
        assert iv.ids.shape == (iv.vgs.size, iv.vds.size)
        assert iv.i_max > 0.02

    def test_iv_noise_level(self):
        device = ReferencePHEMT(seed=5)
        iv = device.iv_dataset(relative_noise=0.01, absolute_noise=0.0)
        clean = device.dc.ids(*iv.mesh)
        residual = (iv.ids - clean)[clean > 1e-3] / clean[clean > 1e-3]
        assert 0.003 < np.std(residual) < 0.03

    def test_same_seed_reproducible(self):
        a = ReferencePHEMT(seed=42).iv_dataset()
        b = ReferencePHEMT(seed=42).iv_dataset()
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_different_seed_differs(self):
        a = ReferencePHEMT(seed=1).iv_dataset()
        b = ReferencePHEMT(seed=2).iv_dataset()
        assert not np.allclose(a.ids, b.ids)

    def test_iv_shape_validation(self):
        with pytest.raises(ValueError):
            IVDataset(vgs=np.zeros(3), vds=np.zeros(4), ids=np.zeros((4, 3)))

    def test_rms_error_of_truth_is_noise_floor(self, golden_device):
        iv = golden_device.iv_dataset()
        rms = iv.rms_error_percent(golden_device.dc)
        assert rms < 1.0  # only measurement noise remains

    def test_sparam_record_close_to_clean(self):
        device = ReferencePHEMT(seed=3)
        fg = FrequencyGrid.linear(1e9, 2e9, 5)
        bias = BiasPoint(0.52, 3.0)
        record = device.sparam_record(fg, bias, error_magnitude=0.002)
        clean = device.small_signal.twoport(fg, bias.vgs, bias.vds)
        assert np.max(np.abs(record.network.s - clean.s)) < 0.35

    def test_noise_parameters_jittered_but_sane(self):
        device = ReferencePHEMT(seed=3)
        fg = FrequencyGrid.linear(1e9, 2e9, 5)
        params = device.noise_parameters(fg, BiasPoint(0.52, 3.0))
        assert np.all(params.fmin >= 1.0)
        assert np.all(params.nfmin_db < 1.0)

    def test_full_dataset_contents(self, golden_device):
        dataset = golden_device.full_dataset()
        assert isinstance(dataset, DeviceDataset)
        assert len(dataset.sparams) == 3
        assert dataset.noise is not None
        record = dataset.sparams_at(BiasPoint(0.52, 3.0))
        assert record.bias.vgs == pytest.approx(0.52)

    def test_sparams_at_missing_bias_raises(self, golden_device):
        dataset = golden_device.full_dataset()
        with pytest.raises(KeyError):
            dataset.sparams_at(BiasPoint(0.99, 9.9))

    def test_factory_seed_default(self):
        assert isinstance(make_reference_device(), ReferencePHEMT)
