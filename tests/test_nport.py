"""N-port algebra tests (repro.rf.nport), validated against MNA."""

import numpy as np
import pytest

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.passives.splitter import ResistiveSplitter
from repro.rf.frequency import FrequencyGrid
from repro.rf.matching import gamma_from_impedance
from repro.rf.nport import NPort
from repro.rf.twoport import attenuator, series_impedance


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1.0e9, 1.8e9, 5)


@pytest.fixture
def splitter(fg):
    return NPort.from_acresult(ResistiveSplitter().solve(fg),
                               name="splitter")


class TestConstruction:
    def test_shape_validation(self, fg):
        with pytest.raises(ValueError):
            NPort(fg, np.zeros((3, 2, 2)))

    def test_port_names_default(self, fg, splitter):
        assert splitter.port_names == ["p1", "p2", "p3"]

    def test_port_resolution(self, splitter):
        assert splitter.port_index("p2") == 1
        assert splitter.port_index(2) == 2
        with pytest.raises(KeyError):
            splitter.port_index("nope")
        with pytest.raises(IndexError):
            splitter.port_index(7)

    def test_from_twoport_roundtrip(self, fg):
        pad = attenuator(fg, 5.0)
        nport = NPort.from_twoport(pad)
        back = nport.as_twoport()
        np.testing.assert_array_equal(back.s, pad.s)

    def test_as_twoport_requires_two(self, splitter):
        with pytest.raises(ValueError):
            splitter.as_twoport()

    def test_physical_checks(self, splitter):
        assert splitter.is_reciprocal()
        assert splitter.is_passive()


class TestTerminate:
    def test_matched_termination_drops_port(self, splitter, fg):
        reduced = splitter.terminate("p3", 0.0)
        assert reduced.n_ports == 2
        # Matched termination of a matched splitter leaves S unchanged
        # in the kept block.
        np.testing.assert_allclose(
            reduced.s, splitter.s[:, :2, :2], atol=1e-12
        )

    def test_termination_matches_mna(self, fg):
        # Splitter with port 3 loaded by 100 ohm, solved both ways.
        gamma = gamma_from_impedance(100.0)
        reduced = NPort.from_acresult(
            ResistiveSplitter().solve(fg)
        ).terminate("p3", gamma)

        circuit = Circuit("loaded_splitter")
        arm = 50.0 / 3.0
        circuit.port("p1", "n1").port("p2", "n2")
        circuit.resistor("R1", "n1", "star", arm)
        circuit.resistor("R2", "n2", "star", arm)
        circuit.resistor("R3", "star", "n3", arm)
        circuit.resistor("Rload", "n3", "gnd", 100.0)
        direct = solve_ac(circuit, fg, compute_noise=False)
        np.testing.assert_allclose(reduced.s, direct.s, atol=1e-9)

    def test_shorted_twoport_gives_input_reflection(self, fg):
        pad = NPort.from_twoport(series_impedance(fg, 50.0))
        one_port = pad.terminate(1, -1.0)  # short the output
        # Series 50 into a short looks like 50 ohm -> Gamma = 0.
        np.testing.assert_allclose(one_port.s[:, 0, 0], 0.0, atol=1e-10)
        # And into an open it is fully reflective.
        open_port = pad.terminate(1, 1.0)
        np.testing.assert_allclose(np.abs(open_port.s[:, 0, 0]), 1.0,
                                   atol=1e-10)


class TestConnect:
    def test_cascade_matches_twoport_operator(self, fg):
        a = attenuator(fg, 3.0)
        b = attenuator(fg, 7.0)
        connected = NPort.from_twoport(a).connect(
            1, NPort.from_twoport(b), 0
        )
        expected = a ** b
        np.testing.assert_allclose(connected.s, expected.s, atol=1e-9)

    def test_splitter_with_lna_arm_matches_mna(self, fg):
        # Attach a 6 dB pad to arm 2 of the splitter: compare against
        # the flat MNA solve of the same physical circuit.
        splitter = NPort.from_acresult(ResistiveSplitter().solve(fg))
        pad = NPort.from_twoport(attenuator(fg, 6.0))
        combined = splitter.connect("p2", pad, 0)
        assert combined.n_ports == 3

        circuit = Circuit("splitter_pad")
        arm = 50.0 / 3.0
        z0 = 50.0
        k = 10 ** (6.0 / 20.0)
        r_series = z0 * (k - 1) / (k + 1)
        r_shunt = 2 * z0 * k / (k * k - 1)
        circuit.port("p1", "n1").port("p3", "n3").port("pout", "out")
        circuit.resistor("R1", "n1", "star", arm)
        circuit.resistor("R2", "n2", "star", arm)
        circuit.resistor("R3", "star", "n3", arm)
        circuit.resistor("Rs1", "n2", "mid", r_series)
        circuit.resistor("Rp", "mid", "gnd", r_shunt)
        circuit.resistor("Rs2", "mid", "out", r_series)
        direct = solve_ac(circuit, fg, compute_noise=False)
        # Port order: combined = (p1, p3, pad-out); direct = (p1, p3, out).
        np.testing.assert_allclose(combined.s, direct.s, atol=1e-9)

    def test_grid_mismatch_rejected(self, fg, splitter):
        other_grid = FrequencyGrid.linear(1.0e9, 1.8e9, 7)
        other = NPort.from_twoport(attenuator(other_grid, 3.0))
        with pytest.raises(ValueError):
            splitter.connect("p2", other, 0)

    def test_port_name_collision_renamed(self, fg, splitter):
        other = NPort.from_twoport(attenuator(fg, 3.0), name="pad")
        combined = splitter.connect("p2", other, 0)
        assert len(set(combined.port_names)) == combined.n_ports


class TestInnerconnect:
    def test_loopback_through_line_matches_mna(self, fg):
        # Take two series resistors as a 4-port (two separate 2-ports),
        # innerconnect the middle -> one series 2-port of the sum.
        a = series_impedance(fg, 30.0)
        b = series_impedance(fg, 45.0)
        combined = NPort.from_twoport(a).connect(
            1, NPort.from_twoport(b), 0
        )
        expected = series_impedance(fg, 75.0)
        np.testing.assert_allclose(combined.s, expected.s, atol=1e-9)

    def test_self_connection_rejected(self, splitter):
        with pytest.raises(ValueError):
            splitter.innerconnect("p1", "p1")
