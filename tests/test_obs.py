"""Unit tests for the observability layer (repro.obs).

Covers the three pieces in isolation: the span tracer (nesting,
null-span fast path, worker-buffer merging, reporting), the metrics
registry (counters/gauges/histograms, idempotent RunHealth absorption),
and the per-generation telemetry protocol (population statistics,
recorder contiguity, checkpoint state round trip).
"""

import io
import json
import threading

import numpy as np
import pytest

from repro.obs import export_observability, profile_run
from repro.obs.metrics import (
    TRUNCATION_COUNTER,
    Metrics,
    format_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.telemetry import (
    GenerationRecord,
    TelemetryRecorder,
    format_telemetry,
    population_stats,
)
from repro.obs.tracer import (
    TRACE_ENV,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_enabled_by_env,
    traced,
)
from repro.optimize.faults import CATEGORY_SINGULAR, RunHealth


@pytest.fixture
def fresh_globals():
    """Swap in clean global tracer/metrics; restore afterwards."""
    tracer = Tracer(enabled=False)
    metrics = Metrics()
    old_tracer = set_tracer(tracer)
    old_metrics = set_metrics(metrics)
    yield tracer, metrics
    set_tracer(old_tracer)
    set_metrics(old_metrics)


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------

class TestTracerDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x")
        b = tracer.span("y", batch=4)
        # The whole point of the fast path: no allocation per call.
        assert a is b
        with a:
            pass
        assert tracer.records == []

    def test_disabled_decorator_passes_through(self):
        tracer = Tracer(enabled=False)

        @tracer.trace("work")
        def work(v):
            return v + 1

        assert work(1) == 2
        assert tracer.records == []

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not trace_enabled_by_env()
        assert not Tracer().enabled
        monkeypatch.setenv(TRACE_ENV, "1")
        assert trace_enabled_by_env()
        assert Tracer().enabled
        monkeypatch.setenv(TRACE_ENV, "off")
        assert not trace_enabled_by_env()


class TestTracerEnabled:
    def test_nesting_reconstructs_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        tree = tracer.span_tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == [
            "child_a", "child_b",
        ]
        assert root["children"][0]["children"][0]["name"] == "grandchild"

    def test_meta_and_annotate(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solve", batch=64) as span:
            span.annotate(fallbacks=2)
        (record,) = tracer.records
        assert record.meta == {"batch": 64, "fallbacks": 2}

    def test_span_records_on_exception_and_pops_stack(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        names = [r.name for r in tracer.records]
        assert names == ["inner", "outer"]
        # The stack unwound cleanly: the next span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.records[-1].parent_id is None

    def test_decorator_uses_qualname_by_default(self):
        tracer = Tracer(enabled=True)

        @tracer.trace()
        def step():
            return 42

        assert step() == 42
        assert tracer.records[0].name.endswith("step")

    def test_global_traced_decorator(self, fresh_globals):
        tracer, _ = fresh_globals

        @traced("global_step")
        def step():
            return 7

        assert step() == 7          # disabled: no record
        assert tracer.records == []
        tracer.enable()
        assert step() == 7
        assert get_tracer().records[0].name == "global_step"

    def test_total_time_counts_roots_only(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        root = [r for r in tracer.records if r.parent_id is None][0]
        assert tracer.total_time() == pytest.approx(root.duration_s)

    def test_threads_record_independent_stacks(self):
        tracer = Tracer(enabled=True)

        def work():
            with tracer.span("thread_root"):
                with tracer.span("thread_child"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = [r for r in tracer.records if r.parent_id is None]
        children = [r for r in tracer.records if r.parent_id is not None]
        assert len(roots) == 4 and len(children) == 4
        root_ids = {r.span_id for r in roots}
        assert all(c.parent_id in root_ids for c in children)


class TestTracerMerge:
    def test_drain_empties_buffer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [r.name for r in drained] == ["a"]
        assert tracer.records == []

    def test_merge_remaps_ids_and_reparents(self):
        parent = Tracer(enabled=True)
        worker = Tracer(enabled=True)
        with parent.span("generation"):
            with worker.span("worker_root"):
                with worker.span("worker_child"):
                    pass
            shipped = worker.drain()
            # Attach under the still-open generation span.
            open_id = parent._stack()[-1]
            parent.merge(shipped, parent_id=open_id)
        tree = parent.span_tree()
        (root,) = tree
        assert root["name"] == "generation"
        (worker_root,) = root["children"]
        assert worker_root["name"] == "worker_root"
        assert worker_root["children"][0]["name"] == "worker_child"

    def test_merge_avoids_id_collisions(self):
        parent = Tracer(enabled=True)
        worker = Tracer(enabled=True)
        with parent.span("p"):
            pass
        with worker.span("w"):
            pass
        # Both tracers allocated span_id == 1 independently.
        parent.merge(worker.drain())
        ids = [r.span_id for r in parent.records]
        assert len(ids) == len(set(ids))
        # Parentless worker spans stay roots when parent_id is None.
        assert all(r.parent_id is None for r in parent.records)


class TestTracerReporting:
    def _traced(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("run"):
                with tracer.span("solve"):
                    pass
        return tracer

    def test_format_spans_aggregates_by_path(self):
        text = self._traced().format_spans()
        lines = text.splitlines()
        assert "span" in lines[0] and "calls" in lines[0]
        run_line = next(l for l in lines if l.lstrip().startswith("run"))
        solve_line = next(l for l in lines
                          if l.lstrip().startswith("solve"))
        assert "3" in run_line and "3" in solve_line
        # Child is indented under its parent path.
        assert solve_line.startswith("  solve")

    def test_format_spans_empty(self):
        assert "no spans" in Tracer(enabled=True).format_spans()

    def test_to_json_round_trips(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        text = tracer.to_json(str(path))
        parsed = json.loads(text)
        assert parsed == json.loads(path.read_text())
        assert len(parsed["spans"]) == 6
        assert len(parsed["tree"]) == 3
        assert parsed["total_time_s"] >= 0.0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        assert metrics.counter("missing") == 0
        metrics.inc("solves")
        metrics.inc("solves", 4)
        assert metrics.counter("solves") == 5
        metrics.set_counter("solves", 2)
        assert metrics.counters() == {"solves": 2}

    def test_gauges_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("best", 3.0)
        metrics.gauge("best", 1.5)
        assert metrics.gauges() == {"best": 1.5}

    def test_histogram_summary(self):
        metrics = Metrics()
        for v in [1.0, 2.0, 3.0, 4.0, 10.0]:
            metrics.observe("iters", v)
        summary = metrics.histogram_summary("iters")
        assert summary["count"] == 5
        assert summary["min"] == 1.0 and summary["max"] == 10.0
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["p50"] == 3.0
        assert metrics.histogram_summary("none") == {"count": 0}

    def test_clear(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        metrics.clear()
        assert metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_absorb_run_health_is_idempotent(self):
        health = RunHealth()
        health.record(CATEGORY_SINGULAR, 3)
        health.retries = 2
        metrics = Metrics()
        metrics.absorb_run_health(health)
        first = metrics.counters()
        # Absorbing the same record again must not double anything —
        # that's the difference between snapshot and accumulation.
        metrics.absorb_run_health(health)
        assert metrics.counters() == first
        assert metrics.counter("health.failures.singular") == 3
        assert metrics.counter("health.n_failures") == 3
        assert metrics.counter("health.retries") == 2

    def test_merge_adds_counters_extends_histograms(self):
        a, b = Metrics(), Metrics()
        a.inc("n", 1)
        b.inc("n", 2)
        b.gauge("g", 9.0)
        b.observe("h", 1.0)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.gauges()["g"] == 9.0
        assert a.histogram_summary("h")["count"] == 1

    def test_format_metrics_lists_everything(self):
        metrics = Metrics()
        metrics.inc("engine.batch_solves", 12)
        metrics.gauge("best", 0.5)
        metrics.observe("dc.newton_iterations", 6.0)
        text = format_metrics(metrics, title="Run metrics")
        assert text.startswith("Run metrics")
        assert "engine.batch_solves" in text
        assert "best" in text
        assert "dc.newton_iterations" in text

    def test_format_metrics_empty(self):
        assert "(no metrics recorded)" in format_metrics(Metrics())

    def test_to_json_writes_file(self, tmp_path):
        metrics = Metrics()
        metrics.inc("a", 2)
        path = tmp_path / "metrics.json"
        metrics.to_json(str(path))
        assert json.loads(path.read_text())["counters"] == {"a": 2}


class TestHistogramReservoir:
    def test_below_cap_stays_exact(self):
        metrics = Metrics(histogram_cap=100)
        for v in range(50):
            metrics.observe("h", float(v))
        summary = metrics.histogram_summary("h")
        assert summary["count"] == 50
        assert summary["n_samples"] == 50
        assert not summary["truncated"]
        assert metrics.counter(TRUNCATION_COUNTER) == 0

    def test_above_cap_bounds_samples_keeps_moments_exact(self):
        metrics = Metrics(histogram_cap=64)
        n = 1000
        for v in range(n):
            metrics.observe("h", float(v))
        summary = metrics.histogram_summary("h")
        assert summary["count"] == n
        assert summary["n_samples"] == 64
        assert summary["truncated"]
        assert summary["min"] == 0.0 and summary["max"] == float(n - 1)
        assert summary["mean"] == pytest.approx((n - 1) / 2.0)
        # The percentile estimate comes from the sample, but it should
        # still land in the right neighbourhood for a uniform ramp.
        assert 0.25 * n < summary["p50"] < 0.75 * n
        # One truncation counter bump per histogram, not per overflow.
        assert metrics.counter(TRUNCATION_COUNTER) == 1
        metrics.observe("other", 1.0)
        assert metrics.counter(TRUNCATION_COUNTER) == 1

    def test_sampling_is_deterministic_per_name(self):
        def fill(name):
            metrics = Metrics(histogram_cap=32)
            for v in range(500):
                metrics.observe(name, float(v))
            return metrics.histogram_summary(name)

        assert fill("latency") == fill("latency")
        # Different names seed different reservoirs.
        a, b = fill("latency"), fill("iterations")
        assert (a["p50"], a["p90"]) != (b["p50"], b["p90"])

    def test_merge_respects_cap_and_counts_new_truncation(self):
        a = Metrics(histogram_cap=16)
        b = Metrics(histogram_cap=16)
        for v in range(12):
            a.observe("h", float(v))
        for v in range(12, 24):
            b.observe("h", float(v))
        assert b.counter(TRUNCATION_COUNTER) == 0
        a.merge(b)
        summary = a.histogram_summary("h")
        assert summary["count"] == 24
        assert summary["n_samples"] == 16
        assert summary["truncated"]
        assert summary["min"] == 0.0 and summary["max"] == 23.0
        assert summary["mean"] == pytest.approx(11.5)
        # Merge itself triggered truncation exactly once.
        assert a.counter(TRUNCATION_COUNTER) == 1

    def test_merge_does_not_double_count_truncation(self):
        a = Metrics(histogram_cap=8)
        b = Metrics(histogram_cap=8)
        for v in range(20):
            b.observe("h", float(v))
        assert b.counter(TRUNCATION_COUNTER) == 1
        a.merge(b)
        # b's own truncation arrives via the counter merge only.
        assert a.counter(TRUNCATION_COUNTER) == 1
        assert a.histogram_summary("h")["count"] == 20

    def test_format_marks_sampled_histograms(self):
        metrics = Metrics(histogram_cap=4)
        for v in range(10):
            metrics.observe("h", float(v))
        assert "(sampled)" in format_metrics(metrics)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------

class TestPopulationStats:
    def test_ignores_penalty_members(self):
        best, mean, spread = population_stats(
            [3.0, np.inf, 1.0, np.nan, 2.0]
        )
        assert best == 1.0
        assert mean == pytest.approx(2.0)
        assert spread == pytest.approx(2.0)

    def test_all_failed_population(self):
        best, mean, spread = population_stats([np.inf, np.nan])
        assert best == np.inf and mean == np.inf and spread == 0.0


class TestGenerationRecord:
    def test_dict_round_trip(self):
        record = GenerationRecord(
            algorithm="de", generation=3, nfev=48, best=1.0, mean=2.0,
            spread=0.5, wall_time_s=0.01, n_failures=1, violation=0.0,
            extra={"stage": 1.0},
        )
        assert GenerationRecord.from_dict(record.as_dict()) == record


class TestTelemetryRecorder:
    def _records(self, generations, algorithm="de"):
        return [
            GenerationRecord(algorithm=algorithm, generation=g,
                             nfev=10 * (g + 1), best=1.0, mean=2.0,
                             spread=0.1, wall_time_s=0.0, violation=0.0)
            for g in generations
        ]

    def test_collects_and_reports_contiguity(self):
        recorder = TelemetryRecorder()
        for record in self._records([0, 1, 2]):
            recorder(record)
        assert len(recorder) == 3
        assert recorder.generations() == [0, 1, 2]
        assert recorder.is_contiguous()

    def test_gap_or_duplicate_breaks_contiguity(self):
        gap = TelemetryRecorder()
        for record in self._records([0, 2]):
            gap(record)
        assert not gap.is_contiguous()
        dup = TelemetryRecorder()
        for record in self._records([0, 1, 1]):
            dup(record)
        assert not dup.is_contiguous()

    def test_per_algorithm_contiguity(self):
        recorder = TelemetryRecorder()
        for record in self._records([0, 1], algorithm="de"):
            recorder(record)
        for record in self._records([0, 1, 2], algorithm="pso"):
            recorder(record)
        assert recorder.is_contiguous()
        assert recorder.generations("pso") == [0, 1, 2]

    def test_restore_drops_post_checkpoint_records(self):
        recorder = TelemetryRecorder()
        for record in self._records([0, 1, 2]):
            recorder(record)
        snapshot = recorder.state()
        for record in self._records([3, 4]):
            recorder(record)
        recorder.restore(snapshot)
        assert recorder.generations() == [0, 1, 2]
        # The resumed run re-emits 3 and 4: still contiguous.
        for record in self._records([3, 4]):
            recorder(record)
        assert recorder.is_contiguous()

    def test_state_survives_json(self):
        recorder = TelemetryRecorder()
        for record in self._records([0, 1]):
            recorder(record)
        state = json.loads(json.dumps(recorder.state()))
        fresh = TelemetryRecorder()
        fresh.restore(state)
        assert fresh.records == recorder.records

    def test_format_telemetry(self):
        recorder = TelemetryRecorder()
        for record in self._records([0, 1]):
            recorder(record)
        text = format_telemetry(recorder)
        assert "gen" in text and "nfev" in text
        assert len(text.splitlines()) == 4
        assert "(no generations recorded)" in format_telemetry(
            TelemetryRecorder()
        )


# ----------------------------------------------------------------------
# profile_run / export_observability
# ----------------------------------------------------------------------

def test_profile_run_captures_and_restores(fresh_globals):
    tracer_before, _ = fresh_globals

    def work():
        from repro.obs import span
        with span("inner"):
            return 13

    stream = io.StringIO()
    result, tracer = profile_run(work, stream=stream)
    assert result == 13
    assert [r.name for r in tracer.records] == ["inner"]
    assert "inner" in stream.getvalue()
    # The pre-existing (disabled) global tracer is back in place.
    assert get_tracer() is tracer_before


def test_profile_run_isolates_metrics(fresh_globals):
    _, metrics_before = fresh_globals
    metrics_before.inc("pre.existing", 7)

    def work():
        from repro.obs import metrics as metrics_module
        metrics_module.inc("work.solves", 3)
        return "ok"

    result, tracer = profile_run(work, stream=io.StringIO())
    assert result == "ok"
    # The profiled run's counters landed in a fresh registry, reachable
    # from the returned tracer — not mixed into the ambient one.
    assert tracer.metrics.counter("work.solves") == 3
    assert tracer.metrics.counter("pre.existing") == 0
    assert get_metrics() is metrics_before
    assert metrics_before.counter("work.solves") == 0


def test_export_observability_writes_both_files(tmp_path, fresh_globals):
    tracer, metrics = fresh_globals
    tracer.enable()
    with tracer.span("root"):
        pass
    metrics.inc("solves", 3)
    trace_path, metrics_path = export_observability(
        str(tmp_path / "artifacts"), prefix="e6_"
    )
    assert trace_path.endswith("e6_trace.json")
    trace = json.loads(open(trace_path).read())
    assert trace["spans"][0]["name"] == "root"
    exported = json.loads(open(metrics_path).read())
    assert exported["counters"] == {"solves": 3}
