"""Noise-theory tests (repro.rf.noise).

Anchored on textbook results: a matched attenuator's NF equals its
loss, a series resistor gives F = 1 + R/Rs, and the correlation-matrix
cascade agrees with the Friis formula.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import (
    NoiseParameters,
    NoisyTwoPort,
    ca_from_cy,
    ca_from_cz,
    ca_from_noise_parameters,
    cascade_ca,
    cy_from_ca,
    cz_from_ca,
    friis_cascade,
    noise_parameters_from_ca,
    passive_cy,
)
from repro.rf.twoport import attenuator, series_impedance, shunt_admittance
from repro.util.constants import T0_KELVIN


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1e9, 2e9, 5)


class TestNoiseParameters:
    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            NoiseParameters([1.1, 1.2], [10.0], [0.01 + 0j, 0.01 + 0j])

    def test_fmin_below_one_rejected(self):
        with pytest.raises(ValueError):
            NoiseParameters([0.5], [10.0], [0.02 + 0j])

    def test_negative_rn_rejected(self):
        with pytest.raises(ValueError):
            NoiseParameters([1.5], [-1.0], [0.02 + 0j])

    def test_nf_at_optimum_is_nfmin(self):
        params = NoiseParameters([2.0], [15.0], [0.015 + 0.005j])
        assert params.noise_factor(params.y_opt)[0] == pytest.approx(2.0)

    def test_nf_grows_off_optimum(self):
        params = NoiseParameters([1.5], [20.0], [0.02 + 0j])
        off = params.noise_factor(0.03 + 0.01j)[0]
        assert off > 1.5

    def test_gamma_opt_consistent_with_y_opt(self):
        params = NoiseParameters([1.5], [20.0], [0.02 + 0.01j])
        gamma = params.gamma_opt(50.0)
        y_back = (1 - gamma) / (1 + gamma) / 50.0
        assert y_back[0] == pytest.approx(params.y_opt[0])

    def test_gamma_source_form_matches_admittance_form(self):
        params = NoiseParameters([1.8], [12.0], [0.018 - 0.008j])
        gamma_s = 0.3 + 0.2j
        ys = (1 - gamma_s) / (1 + gamma_s) / 50.0
        assert params.noise_factor_gamma(gamma_s, 50.0)[
            0
        ] == pytest.approx(params.noise_factor(ys)[0])

    def test_source_with_negative_conductance_rejected(self):
        params = NoiseParameters([1.5], [20.0], [0.02 + 0j])
        with pytest.raises(ValueError):
            params.noise_factor(-0.01 + 0j)

    def test_from_nfmin_db(self):
        params = NoiseParameters.from_nfmin_db([3.0], [10.0], [0.0 + 0.0j])
        assert params.fmin[0] == pytest.approx(10 ** 0.3)
        assert params.y_opt[0] == pytest.approx(1 / 50.0)


class TestCorrelationMatrices:
    @given(
        st.floats(min_value=1.01, max_value=10.0),
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.002, max_value=0.05),
        st.floats(min_value=-0.02, max_value=0.02),
    )
    @settings(max_examples=50, deadline=None)
    def test_ca_roundtrip(self, fmin, rn, g_opt, b_opt):
        params = NoiseParameters([fmin], [rn], [g_opt + 1j * b_opt])
        ca = ca_from_noise_parameters(params)
        back = noise_parameters_from_ca(ca)
        assert back.fmin[0] == pytest.approx(fmin, rel=1e-6)
        assert back.rn[0] == pytest.approx(rn, rel=1e-9)
        assert back.y_opt[0] == pytest.approx(g_opt + 1j * b_opt, rel=1e-6)

    def test_series_resistor_noise_figure(self, fg):
        # F = 1 + R/Rs for a series resistor at T0.
        network = series_impedance(fg, 100.0)
        noisy = NoisyTwoPort.from_passive(network, T0_KELVIN)
        nf = noisy.noise_figure_db()
        expected = 10 * np.log10(1 + 100.0 / 50.0)
        np.testing.assert_allclose(nf, expected, rtol=1e-9)

    def test_attenuator_noise_figure_equals_loss(self, fg):
        for loss_db in (3.0, 6.0, 10.0, 20.0):
            pad = NoisyTwoPort.from_passive(attenuator(fg, loss_db),
                                            T0_KELVIN)
            np.testing.assert_allclose(
                pad.noise_figure_db(), loss_db, rtol=1e-9
            )

    def test_cold_attenuator_quieter_than_t0(self, fg):
        pad_cold = NoisyTwoPort.from_passive(attenuator(fg, 10.0), 77.0)
        assert np.all(pad_cold.noise_figure_db() < 10.0)

    def test_cascade_matches_friis(self, fg):
        # Two matched attenuators: F_total = F1 + (F2-1)/G1.
        pad_a = NoisyTwoPort.from_passive(attenuator(fg, 4.0), T0_KELVIN)
        pad_b = NoisyTwoPort.from_passive(attenuator(fg, 7.0), T0_KELVIN)
        total = pad_a ** pad_b
        friis = friis_cascade(
            [10 ** 0.4 * np.ones(5), 10 ** 0.7 * np.ones(5)],
            [10 ** -0.4 * np.ones(5), 10 ** -0.7 * np.ones(5)],
        )
        np.testing.assert_allclose(
            total.noise_figure_db(), 10 * np.log10(friis), rtol=1e-9
        )

    def test_cy_ca_transform_consistency(self, fg):
        network = attenuator(fg, 8.0)
        cy = passive_cy(network.y, T0_KELVIN)
        ca = ca_from_cy(cy, network.abcd)
        cy_back = cy_from_ca(ca, network.y)
        np.testing.assert_allclose(cy_back, cy, rtol=1e-8, atol=1e-30)

    def test_cz_ca_transform_consistency(self, fg):
        network = attenuator(fg, 8.0)
        cy = passive_cy(network.y, T0_KELVIN)
        ca = ca_from_cy(cy, network.abcd)
        cz = cz_from_ca(ca, network.z)
        ca_back = ca_from_cz(cz, network.abcd)
        np.testing.assert_allclose(ca_back, ca, rtol=1e-8, atol=1e-30)

    def test_cascade_ca_zero_second_stage(self, fg):
        network = attenuator(fg, 5.0)
        cy = passive_cy(network.y, T0_KELVIN)
        ca = ca_from_cy(cy, network.abcd)
        total = cascade_ca(ca, network.abcd, np.zeros_like(ca))
        np.testing.assert_allclose(total, ca)

    def test_zero_voltage_noise_ca_raises_degenerate(self):
        # CA11 == 0 (a noiseless-series network, e.g. an ideal shunt
        # conductance) has no finite noise-parameter representation.
        ca = np.zeros((1, 2, 2), dtype=complex)
        ca[0, 1, 1] = 1e-20
        with pytest.raises(ValueError):
            noise_parameters_from_ca(ca)

    def test_shunt_with_series_loss_has_small_rn(self, fg):
        # A realistic shunt branch preceded by a tiny series resistance
        # has Rn ~ that resistance and Yopt near the shunt conductance.
        network = series_impedance(fg, 0.5) ** shunt_admittance(fg, 0.02)
        noisy = NoisyTwoPort.from_passive(network, T0_KELVIN)
        params = noisy.noise_parameters
        assert np.all(params.rn < 1.0)
        assert np.all(params.fmin >= 1.0)


class TestNoisyTwoPort:
    def test_shape_validation(self, fg):
        network = attenuator(fg, 3.0)
        with pytest.raises(ValueError):
            NoisyTwoPort(network, np.zeros((2, 2, 2)))

    def test_grid_mismatch_rejected(self, fg):
        network = attenuator(fg, 3.0)
        other = FrequencyGrid.linear(1e9, 2e9, 7)
        params = NoiseParameters(
            np.full(7, 1.5), np.full(7, 10.0), np.full(7, 0.02 + 0j)
        )
        with pytest.raises(ValueError):
            NoisyTwoPort.from_noise_parameters(network, params)

    def test_cascade_type_error(self, fg):
        noisy = NoisyTwoPort.from_passive(attenuator(fg, 3.0))
        with pytest.raises(TypeError):
            noisy ** attenuator(fg, 3.0)

    def test_amplifier_then_attenuator_nf_nearly_amplifier(self, fg):
        # A 20 dB gain stage (NF 1 dB) in front of a 10 dB pad: Friis
        # gives F = 1.259 + 9/100 = 1.349, i.e. ~0.3 dB of degradation.
        s = np.zeros((5, 2, 2), dtype=complex)
        s[:, 1, 0] = 10.0
        from repro.rf.twoport import TwoPort

        amp_network = TwoPort(fg, s)
        params = NoiseParameters.from_nfmin_db(
            np.full(5, 1.0), np.full(5, 10.0), np.zeros(5, dtype=complex)
        )
        amp = NoisyTwoPort.from_noise_parameters(amp_network, params)
        pad = NoisyTwoPort.from_passive(attenuator(fg, 10.0), T0_KELVIN)
        chain = amp ** pad
        nf_chain = chain.noise_figure_db()
        nf_amp = amp.noise_figure_db()
        assert np.all(nf_chain >= nf_amp)
        expected = 10 * np.log10(10 ** 0.1 + 9.0 / 100.0)
        np.testing.assert_allclose(nf_chain, expected, rtol=1e-9)

    def test_friis_validation(self):
        with pytest.raises(ValueError):
            friis_cascade([], [])
        with pytest.raises(ValueError):
            friis_cascade([1.5], [0.5, 0.5])
