"""FrequencyGrid / Band tests (repro.rf.frequency)."""

import numpy as np
import pytest

from repro.rf.frequency import Band, FrequencyGrid


class TestFrequencyGrid:
    def test_linear_endpoints(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 11)
        assert grid.f_hz[0] == 1e9
        assert grid.f_hz[-1] == 2e9
        assert len(grid) == 11

    def test_logarithmic_is_geometric(self):
        grid = FrequencyGrid.logarithmic(1e8, 1e10, 5)
        ratios = grid.f_hz[1:] / grid.f_hz[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_single(self):
        grid = FrequencyGrid.single(1.4e9)
        assert len(grid) == 1
        assert grid.f_hz[0] == 1.4e9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FrequencyGrid(np.array([0.0, 1e9]))

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            FrequencyGrid(np.array([2e9, 1e9]))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            FrequencyGrid(np.array([1e9, 1e9]))

    def test_immutable(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 3)
        with pytest.raises(ValueError):
            grid.f_hz[0] = 5e9

    def test_omega(self):
        grid = FrequencyGrid.single(1e9)
        assert grid.omega[0] == pytest.approx(2 * np.pi * 1e9)

    def test_index_of_picks_closest(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 11)
        assert grid.index_of(1.44e9) == 4
        assert grid.index_of(1.46e9) == 5

    def test_equality(self):
        a = FrequencyGrid.linear(1e9, 2e9, 5)
        b = FrequencyGrid.linear(1e9, 2e9, 5)
        c = FrequencyGrid.linear(1e9, 2e9, 6)
        assert a == b
        assert a != c

    def test_iteration(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 3)
        assert list(grid) == [1e9, 1.5e9, 2e9]


class TestBand:
    def test_center_and_width(self):
        band = Band("test", 1.0e9, 2.0e9)
        assert band.center == pytest.approx(1.5e9)
        assert band.width == pytest.approx(1.0e9)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Band("bad", 2e9, 1e9)

    def test_rejects_nonpositive_low(self):
        with pytest.raises(ValueError):
            Band("bad", 0.0, 1e9)

    def test_contains(self):
        band = Band("test", 1.1e9, 1.7e9)
        result = band.contains(np.array([1.0e9, 1.2e9, 1.8e9]))
        np.testing.assert_array_equal(result, [False, True, False])

    def test_grid_spans_band(self):
        band = Band("test", 1.1e9, 1.7e9)
        grid = band.grid(7)
        assert grid.f_hz[0] == band.f_low
        assert grid.f_hz[-1] == band.f_high

    def test_restricted(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 11)
        band = Band("mid", 1.25e9, 1.65e9)
        restricted = grid.restricted(band)
        assert np.all(band.contains(restricted.f_hz))
        assert len(restricted) == 4  # 1.3, 1.4, 1.5, 1.6 GHz

    def test_restricted_empty_raises(self):
        grid = FrequencyGrid.linear(1e9, 2e9, 3)
        band = Band("narrow", 1.1e9, 1.2e9)
        with pytest.raises(ValueError):
            grid.restricted(band)
