"""Coax-line and system-budget tests (repro.passives.coax, core.system_budget)."""

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.system_budget import SystemBudget
from repro.passives.coax import CoaxLine, lmr240_like, rg58_like, rg174_like
from repro.passives.splitter import WilkinsonDivider
from repro.rf.frequency import FrequencyGrid
from repro.util.constants import T0_KELVIN


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1.1e9, 1.7e9, 7)


class TestCoaxLine:
    def test_rg58_impedance_near_50(self):
        cable = rg58_like(1.0)
        assert cable.z0 == pytest.approx(50.0, abs=2.5)

    def test_loss_magnitudes_ordered(self):
        # Thinner cable, more loss; low-loss LMR best.
        f = 1.5e9
        assert rg174_like(1.0).loss_db(f) > rg58_like(1.0).loss_db(f)
        assert rg58_like(1.0).loss_db(f) > lmr240_like(1.0).loss_db(f)

    def test_rg58_loss_class(self):
        # ~0.3-0.7 dB/m at 1.5 GHz for RG-58-class cable.
        loss = float(rg58_like(1.0).loss_db(1.5e9))
        assert 0.2 < loss < 0.8

    def test_loss_scales_with_length(self):
        short = rg58_like(1.0)
        long = rg58_like(10.0)
        assert float(long.loss_db(1.5e9)) == pytest.approx(
            10 * float(short.loss_db(1.5e9)), rel=1e-9
        )

    def test_loss_grows_with_frequency(self):
        cable = rg58_like(5.0)
        f = np.array([0.5e9, 1.0e9, 2.0e9])
        assert np.all(np.diff(cable.loss_db(f)) > 0)

    def test_twoport_passive(self, fg):
        network = rg58_like(10.0).as_twoport(fg)
        assert network.is_passive()
        assert network.is_reciprocal(tol=1e-9)

    def test_matched_cable_nf_equals_loss_at_t0(self, fg):
        from dataclasses import replace

        cable = replace(rg58_like(10.0), temperature=T0_KELVIN)
        noisy = cable.as_noisy_twoport(fg)
        # A (nearly) matched passive at T0: NF ~= insertion loss.
        np.testing.assert_allclose(
            noisy.noise_figure_db(), cable.loss_db(fg.f_hz), atol=0.05
        )

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CoaxLine(2e-3, 1e-3, 2.2, 1e-4, 5.8e7, 1.0)
        with pytest.raises(ValueError):
            CoaxLine(1e-3, 3e-3, 0.5, 1e-4, 5.8e7, 1.0)
        with pytest.raises(ValueError):
            CoaxLine(1e-3, 3e-3, 2.2, 1e-4, 5.8e7, -1.0)


class TestSystemBudget:
    @pytest.fixture(scope="class")
    def template(self):
        from repro.devices.reference import make_reference_device

        return AmplifierTemplate(make_reference_device().small_signal)

    def test_preamp_rescues_noise_figure(self, template, fg):
        budget = SystemBudget(
            template, DesignVariables(), downlead=rg58_like(15.0),
            splitter=WilkinsonDivider(1.4e9),
        )
        result = budget.evaluate(fg)
        # Without the preamp the chain NF equals the passive loss
        # (~10-11 dB of cable + splitter); with the ~17 dB preamp in
        # front, the receiver sees ~0.6 dB + the suppressed residual.
        assert np.all(result.nf_without_preamp_db > 8.0)
        assert np.all(result.nf_with_preamp_db < 3.2)
        assert np.all(result.improvement_db() > 6.0)

    def test_gain_budget(self, template, fg):
        budget = SystemBudget(
            template, DesignVariables(), downlead=rg58_like(15.0),
            splitter=WilkinsonDivider(1.4e9),
        )
        result = budget.evaluate(fg)
        # Preamp gain minus cable and splitter losses stays positive.
        assert np.all(result.gain_with_preamp_db > 0.0)
        assert np.all(result.gain_without_preamp_db < 0.0)

    def test_without_splitter(self, template, fg):
        budget = SystemBudget(template, DesignVariables(),
                              downlead=lmr240_like(10.0))
        result = budget.evaluate(fg)
        summary = result.summary()
        assert summary["NF_with_preamp_max_dB"] < 1.0
        assert summary["improvement_min_dB"] > 1.0

    def test_longer_cable_worse_without_preamp(self, template, fg):
        short = SystemBudget(template, DesignVariables(),
                             downlead=rg58_like(5.0)).evaluate(fg)
        long = SystemBudget(template, DesignVariables(),
                            downlead=rg58_like(30.0)).evaluate(fg)
        assert np.all(long.nf_without_preamp_db
                      > short.nf_without_preamp_db)
        # The preamp strongly de-sensitizes the budget to cable length:
        # the NF penalty of +25 m shrinks by well over half.
        delta_with = np.max(long.nf_with_preamp_db
                            - short.nf_with_preamp_db)
        delta_without = np.min(long.nf_without_preamp_db
                               - short.nf_without_preamp_db)
        assert delta_with < 0.5 * delta_without
