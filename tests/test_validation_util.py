"""Validation-helper tests (repro.util.validation)."""

import numpy as np
import pytest

from repro.util.validation import (
    ensure_1d,
    ensure_in_range,
    ensure_matrix_shape,
    ensure_nonnegative,
    ensure_positive,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert ensure_positive(3.0, "x") == 3.0
        ensure_positive([1.0, 2.0], "x")

    def test_positive_rejects(self):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(0.0, "x")
        with pytest.raises(ValueError):
            ensure_positive([1.0, -2.0], "x")

    def test_nonnegative(self):
        ensure_nonnegative(0.0, "x")
        with pytest.raises(ValueError):
            ensure_nonnegative(-1e-12, "x")

    def test_in_range(self):
        ensure_in_range(0.5, 0.0, 1.0, "x")
        ensure_in_range([0.0, 1.0], 0.0, 1.0, "x")
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0, "x")


class TestNanRejection:
    """NaN must be rejected explicitly, with a message naming NaN."""

    def test_positive_rejects_nan_by_name(self):
        with pytest.raises(ValueError, match="NaN"):
            ensure_positive(np.nan, "x")
        with pytest.raises(ValueError, match="NaN"):
            ensure_positive([1.0, np.nan], "x")

    def test_nonnegative_rejects_nan_by_name(self):
        with pytest.raises(ValueError, match="NaN"):
            ensure_nonnegative(np.nan, "x")

    def test_in_range_rejects_nan_by_name(self):
        with pytest.raises(ValueError, match="NaN"):
            ensure_in_range([0.5, np.nan], 0.0, 1.0, "x")

    def test_infinity_is_not_misreported_as_nan(self):
        # +inf fails the range check, not the NaN check.
        with pytest.raises(ValueError, match="lie in"):
            ensure_in_range(np.inf, 0.0, 1.0, "x")
        ensure_positive(np.inf, "x")  # inf > 0 is legitimately positive


class TestArrayChecks:
    def test_matrix_shape_suffix(self):
        arr = np.zeros((5, 2, 2))
        out = ensure_matrix_shape(arr, (2, 2), "s")
        assert out.shape == (5, 2, 2)
        with pytest.raises(ValueError, match="s"):
            ensure_matrix_shape(arr, (3, 3), "s")

    def test_ensure_1d(self):
        out = ensure_1d([1.0, 2.0], "f")
        assert out.shape == (2,)
        out_scalar = ensure_1d(3.0, "f")
        assert out_scalar.shape == (1,)
        with pytest.raises(ValueError):
            ensure_1d(np.zeros((2, 2)), "f")
