"""Matching and design-circle tests (repro.rf.matching, repro.rf.circles)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.circles import available_gain_circle, noise_circle
from repro.rf.gain import available_gain, input_reflection, output_reflection
from repro.rf.matching import (
    design_l_section,
    gamma_from_impedance,
    impedance_from_gamma,
    mismatch_loss_db,
    simultaneous_conjugate_match,
    vswr_from_gamma,
)
from repro.rf.noise import NoiseParameters


class TestReflectionAlgebra:
    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=-200.0, max_value=200.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_gamma_impedance_roundtrip(self, r, x):
        z = complex(r, x)
        gamma = gamma_from_impedance(z)
        assert np.abs(gamma) < 1.0
        assert impedance_from_gamma(gamma) == pytest.approx(z, rel=1e-9)

    def test_matched_gamma_zero(self):
        assert gamma_from_impedance(50.0) == pytest.approx(0.0)

    def test_vswr_of_match_is_one(self):
        assert vswr_from_gamma(0.0) == pytest.approx(1.0)

    def test_vswr_of_2to1(self):
        gamma = gamma_from_impedance(100.0)  # |Gamma| = 1/3 -> VSWR 2
        assert vswr_from_gamma(gamma) == pytest.approx(2.0)

    def test_mismatch_loss_zero_at_match(self):
        assert mismatch_loss_db(0.0) == pytest.approx(0.0)

    def test_mismatch_loss_3db_at_half_power(self):
        gamma = np.sqrt(0.5)
        assert mismatch_loss_db(gamma) == pytest.approx(
            10 * np.log10(2), rel=1e-9
        )


class TestLSection:
    @given(
        st.floats(min_value=5.0, max_value=400.0),
        st.floats(min_value=-150.0, max_value=150.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_l_section_transforms_load_to_target(self, r_load, x_load):
        f_hz = 1.5e9
        z_load = complex(r_load, x_load)
        z_target = complex(50.0, 0.0)
        section = design_l_section(z_load, z_target, f_hz)
        # Apply the section analytically: shunt (susceptance) and
        # series (reactance) in the designed order, looking from target
        # side toward the load.
        if section.shunt_first:
            y_mid = 1.0 / z_load + 1j * section.shunt_b
            z_in = 1.0 / y_mid + 1j * section.series_x
        else:
            z_mid = z_load + 1j * section.series_x
            y_in = 1.0 / z_mid + 1j * section.shunt_b
            z_in = 1.0 / y_in
        assert z_in.real == pytest.approx(z_target.real, rel=1e-6, abs=1e-6)
        assert z_in.imag == pytest.approx(z_target.imag, rel=1e-6, abs=1e-6)

    def test_element_realization_signs(self):
        section = design_l_section(20.0 + 10.0j, 50.0, 1.5e9)
        elements = section.element_values()
        for role in ("series", "shunt"):
            kind, value = elements[role]
            assert kind in ("L", "C")
            assert value > 0

    def test_rejects_nonpositive_real(self):
        with pytest.raises(ValueError):
            design_l_section(-10.0 + 5j, 50.0, 1e9)


class TestConjugateMatch:
    def test_simultaneous_match_conjugates_both_ports(self):
        # A stable device: verify Gamma_in = Gamma_s* and Gamma_out = Gamma_l*.
        s = np.array([[0.3 - 0.2j, 0.05], [2.0 + 0.5j, 0.4 + 0.1j]],
                     dtype=complex)
        gamma_s, gamma_l = simultaneous_conjugate_match(s)
        assert abs(gamma_s) < 1.0
        assert abs(gamma_l) < 1.0
        gamma_in = complex(input_reflection(s[None], gamma_l)[0])
        gamma_out = complex(output_reflection(s[None], gamma_s)[0])
        assert gamma_in == pytest.approx(np.conjugate(gamma_s), rel=1e-9)
        assert gamma_out == pytest.approx(np.conjugate(gamma_l), rel=1e-9)

    def test_unstable_device_rejected(self):
        s = np.array([[0.8, 0.5], [5.0, 0.8]], dtype=complex)
        with pytest.raises(ValueError):
            simultaneous_conjugate_match(s)

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            simultaneous_conjugate_match(np.zeros((3, 2, 2)))


class TestNoiseCircles:
    def test_circle_at_nfmin_degenerates_to_gamma_opt(self):
        fmin, rn, gamma_opt = 1.3, 12.0, 0.4 + 0.2j
        circle = noise_circle(fmin, rn, gamma_opt,
                              nf_target_db=10 * np.log10(fmin))
        assert circle.center == pytest.approx(gamma_opt, rel=1e-9)
        assert circle.radius == pytest.approx(0.0, abs=1e-9)

    def test_points_on_circle_achieve_target_nf(self):
        fmin, rn, gamma_opt = 1.3, 12.0, 0.35 - 0.15j
        target_db = 2.0
        circle = noise_circle(fmin, rn, gamma_opt, target_db)
        params = NoiseParameters(
            [fmin], [rn],
            [(1 - gamma_opt) / (1 + gamma_opt) / 50.0],
        )
        for gamma in circle.points(17):
            nf = params.noise_figure_db(
                (1 - gamma) / (1 + gamma) / 50.0
            )[0]
            assert nf == pytest.approx(target_db, abs=1e-6)

    def test_target_below_nfmin_rejected(self):
        with pytest.raises(ValueError):
            noise_circle(1.5, 10.0, 0.3 + 0j, nf_target_db=1.0)

    def test_below_nfmin_message_reports_both_values_in_db(self):
        fmin = 1.5
        with pytest.raises(ValueError) as excinfo:
            noise_circle(fmin, 10.0, 0.3 + 0j, nf_target_db=1.0)
        message = str(excinfo.value)
        assert "1.000 dB" in message
        assert f"{10 * np.log10(fmin):.3f} dB" in message

    def test_zero_rn_at_nfmin_is_point_circle(self):
        """Regression: rn -> 0 with the target at NFmin used to divide
        by zero; it must collapse to the point circle at gamma_opt."""
        fmin, gamma_opt = 1.3, 0.4 + 0.2j
        circle = noise_circle(fmin, 0.0, gamma_opt,
                              nf_target_db=10 * np.log10(fmin))
        assert np.isfinite(circle.radius)
        assert circle.center == pytest.approx(gamma_opt, rel=1e-12)
        assert circle.radius == 0.0

    def test_zero_rn_above_nfmin_stays_finite(self):
        """rn -> 0 means NF barely depends on the match: the circle is
        huge but must stay finite (no inf/nan center or radius)."""
        circle = noise_circle(1.3, 0.0, 0.4 + 0.2j, nf_target_db=2.0)
        assert np.isfinite(circle.radius)
        assert np.isfinite(circle.center.real)
        assert np.isfinite(circle.center.imag)
        # Degenerate limit: the circle converges on the unit circle —
        # every passive source match achieves the target.
        assert circle.radius == pytest.approx(1.0, abs=1e-9)
        assert abs(circle.center) == pytest.approx(0.0, abs=1e-9)
        for probe in (0.0, 0.5 + 0.5j, -0.9j):
            assert circle.contains(probe)

    def test_target_just_below_nfmin_within_rounding_accepted(self):
        """The dB-domain tolerance: a target equal to NFmin up to
        floating-point rounding is the point circle, not an error."""
        fmin, gamma_opt = 1.3, 0.35 - 0.15j
        nfmin_db = 10 * np.log10(fmin)
        circle = noise_circle(fmin, 8.0, gamma_opt,
                              nf_target_db=nfmin_db - 1e-12)
        assert circle.radius == 0.0
        assert circle.center == pytest.approx(gamma_opt, rel=1e-9)


class TestGainCircles:
    def test_points_on_circle_achieve_target_gain(self):
        s = np.array([[0.3 - 0.2j, 0.05], [2.0 + 0.5j, 0.4 + 0.1j]],
                     dtype=complex)
        target_db = 6.5
        circle = available_gain_circle(s, target_db)
        for gamma_s in circle.points(17):
            if abs(gamma_s) >= 1.0:
                continue
            ga = float(available_gain(s[None], gamma_s)[0])
            assert 10 * np.log10(ga) == pytest.approx(target_db, abs=1e-6)

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            available_gain_circle(np.zeros((2, 2, 2)), 10.0)
