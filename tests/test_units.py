"""Unit-conversion tests (repro.util.units)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import units


class TestDbConversions:
    def test_db10_of_ten_is_ten_db(self):
        assert units.db10(10.0) == pytest.approx(10.0)

    def test_db20_of_ten_is_twenty_db(self):
        assert units.db20(10.0) == pytest.approx(20.0)

    def test_db20_uses_magnitude_of_complex(self):
        assert units.db20(3 + 4j) == pytest.approx(units.db20(5.0))

    def test_db10_clamps_zero_instead_of_minus_inf(self):
        assert np.isfinite(units.db10(0.0))

    @given(st.floats(min_value=-100, max_value=100))
    def test_db10_roundtrip(self, x_db):
        assert units.db10(units.from_db10(x_db)) == pytest.approx(
            x_db, abs=1e-9
        )

    @given(st.floats(min_value=-100, max_value=100))
    def test_db20_roundtrip(self, x_db):
        assert units.db20(units.from_db20(x_db)) == pytest.approx(
            x_db, abs=1e-9
        )

    def test_vectorized(self):
        values = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(units.db10(values), [0.0, 10.0, 20.0])


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watt(30.0) == pytest.approx(1.0)

    @given(st.floats(min_value=-120, max_value=60))
    def test_dbm_roundtrip(self, p_dbm):
        assert units.watt_to_dbm(units.dbm_to_watt(p_dbm)) == pytest.approx(
            p_dbm, abs=1e-9
        )


class TestNoiseConversions:
    def test_nf_3db_is_factor_two(self):
        assert units.nf_db_to_factor(10 * np.log10(2)) == pytest.approx(2.0)

    def test_t290_is_3db(self):
        assert units.noise_temperature_to_nf_db(290.0) == pytest.approx(
            10 * np.log10(2)
        )

    def test_0db_is_zero_kelvin(self):
        assert units.nf_db_to_noise_temperature(0.0) == pytest.approx(0.0)

    @given(st.floats(min_value=0.0, max_value=30.0))
    def test_temperature_roundtrip(self, nf_db):
        temperature = units.nf_db_to_noise_temperature(nf_db)
        assert units.noise_temperature_to_nf_db(
            temperature
        ) == pytest.approx(nf_db, abs=1e-9)


class TestMagPhase:
    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=-179.0, max_value=179.0),
    )
    def test_roundtrip(self, mag, phase):
        z = units.from_magphase_deg(mag, phase)
        mag_out, phase_out = units.magphase_deg(z)
        assert mag_out == pytest.approx(mag, rel=1e-9)
        assert phase_out == pytest.approx(phase, abs=1e-6)
