"""Splitter and composite-network tests (repro.passives.splitter/networks)."""

import numpy as np
import pytest

from repro.passives.networks import BiasFeed, MatchingSection, dc_block
from repro.passives.splitter import (
    ResistiveSplitter,
    WilkinsonDivider,
    ideal_tee_sparams,
    tee_junction_parasitic_sparams,
)
from repro.rf.frequency import FrequencyGrid


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1.0e9, 1.8e9, 9)


class TestTeeJunction:
    def test_ideal_tee_values(self):
        s = ideal_tee_sparams(2)
        assert s.shape == (2, 3, 3)
        np.testing.assert_allclose(np.diag(s[0]), -1 / 3)
        assert s[0, 0, 1] == pytest.approx(2 / 3)

    def test_parasitic_tee_approaches_ideal_at_low_f(self):
        low = FrequencyGrid.single(10e6)
        s = tee_junction_parasitic_sparams(low, shunt_capacitance=30e-15)
        np.testing.assert_allclose(s[0], ideal_tee_sparams(1)[0], atol=1e-3)

    def test_parasitic_tee_degrades_with_frequency(self, fg):
        s = tee_junction_parasitic_sparams(fg, shunt_capacitance=200e-15)
        # More reflective at the top of the band than the bottom.
        assert abs(s[-1, 0, 0]) > abs(s[0, 0, 0])


class TestResistiveSplitter:
    def test_matched_all_ports(self, fg):
        result = ResistiveSplitter().solve(fg)
        np.testing.assert_allclose(
            np.abs(np.diagonal(result.s, axis1=1, axis2=2)), 0.0, atol=1e-9
        )

    def test_six_db_split(self, fg):
        result = ResistiveSplitter().solve(fg)
        np.testing.assert_allclose(np.abs(result.s[:, 1, 0]), 0.5,
                                   rtol=1e-9)

    def test_symmetric(self, fg):
        result = ResistiveSplitter().solve(fg)
        np.testing.assert_allclose(result.s[:, 1, 0], result.s[:, 2, 0],
                                   atol=1e-12)


class TestWilkinson:
    def test_design_frequency_behaviour(self):
        divider = WilkinsonDivider(1.4e9)
        fg = FrequencyGrid.single(1.4e9)
        result = divider.solve(fg)
        s = result.s[0]
        # Input match better than 20 dB, isolation better than 20 dB,
        # split within 0.5 dB of the lossy ideal -3 dB.
        assert 20 * np.log10(abs(s[0, 0])) < -20.0
        assert 20 * np.log10(abs(s[2, 1])) < -20.0
        split_db = 20 * np.log10(abs(s[1, 0]))
        assert -3.6 < split_db < -3.0

    def test_reciprocal(self):
        divider = WilkinsonDivider(1.4e9)
        fg = FrequencyGrid.linear(1.2e9, 1.6e9, 3)
        s = divider.solve(fg).s
        np.testing.assert_allclose(s, np.swapaxes(s, 1, 2), atol=1e-9)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            WilkinsonDivider(-1e9)


class TestMatchingSection:
    def test_cascade_matches_mna_insertion(self, fg):
        from repro.analysis.acsolver import solve_ac
        from repro.analysis.netlist import Circuit

        section = MatchingSection("m1", series=("L", 6.8e-9),
                                  shunt=("C", 2.2e-12))
        analytic = section.as_noisy_twoport(fg)
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        section.add_to(circuit, "a", "b")
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(result.s, analytic.network.s, atol=1e-9)
        np.testing.assert_allclose(
            result.as_noisy_twoport().noise_figure_db(),
            analytic.noise_figure_db(),
            rtol=1e-6,
        )

    def test_shunt_first_order_matters(self, fg):
        args = dict(series=("L", 6.8e-9), shunt=("C", 2.2e-12))
        normal = MatchingSection("m1", **args)
        swapped = MatchingSection("m2", shunt_first=True, **args)
        s_a = normal.as_noisy_twoport(fg).network.s
        s_b = swapped.as_noisy_twoport(fg).network.s
        assert not np.allclose(s_a, s_b)

    def test_unknown_element_kind_rejected(self, fg):
        section = MatchingSection("bad", series=("R", 10.0))
        with pytest.raises(ValueError):
            section.as_noisy_twoport(fg)

    def test_empty_section_is_thru(self, fg):
        section = MatchingSection("empty")
        network = section.as_noisy_twoport(fg).network
        np.testing.assert_allclose(np.abs(network.s21), 1.0, rtol=1e-9)


class TestBiasBlocks:
    def test_bias_feed_high_impedance_in_band(self, fg):
        feed = BiasFeed("vd")
        z = feed.shunt_impedance(1.575e9)
        assert abs(z) > 200.0  # must not load the 50-ohm line

    def test_bias_feed_noise_small(self, fg):
        feed = BiasFeed("vd")
        noisy = feed.as_noisy_twoport(fg)
        assert np.all(noisy.noise_figure_db() < 0.5)

    def test_bias_feed_mna_matches_shunt_model_at_rf(self, fg):
        from repro.analysis.acsolver import solve_ac
        from repro.analysis.netlist import Circuit

        feed = BiasFeed("vd")
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("Rthru", "a", "b", 1e-6, temperature=0.0)
        feed.add_to(circuit, "b", "supply")
        # The supply node is RF-grounded through the decoupling network
        # inside the feed itself; the model treats it as a shunt.
        result = solve_ac(circuit, fg)
        analytic = feed.as_noisy_twoport(fg)
        np.testing.assert_allclose(
            np.abs(result.s[:, 1, 0]),
            np.abs(analytic.network.s[:, 1, 0]),
            rtol=0.02,
        )

    def test_dc_block_transparent_in_band(self, fg):
        block = dc_block(fg, 47e-12)
        s21_db = 20 * np.log10(np.abs(block.network.s21))
        assert np.all(s21_db > -0.2)
