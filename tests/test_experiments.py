"""Experiment-driver smoke tests (repro.experiments).

Each driver must run at a reduced budget, return its result record, and
render a non-empty report.  The heavyweight E8-E11 drivers run from the
"fast" selected-design profile, computed once per session.
"""

import numpy as np
import pytest

from repro.experiments import (
    REGISTRY,
    e1_model_comparison,
    e2_extraction_robustness,
    e3_iv_curves,
    e4_sparam_fit,
    e7_passive_dispersion,
    e8_selected_design,
    e9_measured_sparams,
    e10_measured_nf,
    e11_intermodulation,
)


class TestRegistry:
    def test_all_twelve_registered(self):
        assert set(REGISTRY) == {f"E{i}" for i in range(1, 13)}

    def test_every_module_has_run_and_format(self):
        for module in REGISTRY.values():
            assert hasattr(module, "run")
            assert hasattr(module, "format_report")


class TestLightExperiments:
    def test_e1_ranking_shape(self):
        result = e1_model_comparison.run(de_population=15, de_iterations=40)
        assert len(result.rows) == 5
        by_model = {row["model"]: row["rms_iv_percent"]
                    for row in result.rows}
        # The headline claim: Angelov fits the E-pHEMT best, the plain
        # square law worst.
        assert by_model["angelov"] < by_model["statz"]
        assert by_model["angelov"] < by_model["curtice2"]
        assert by_model["curtice2"] > by_model["statz"]
        report = e1_model_comparison.format_report(result)
        assert "Table I" in report and "angelov" in report

    def test_e2_three_step_most_robust(self):
        result = e2_extraction_robustness.run(n_trials=3, de_population=15,
                                              de_iterations=40)
        rates = {row["method"]: row["success_rate"] for row in result.rows}
        assert rates["three-step (paper)"] >= rates["local only"]
        assert rates["three-step (paper)"] == 1.0
        report = e2_extraction_robustness.format_report(result)
        assert "Table II" in report

    def test_e3_fit_tracks_measurement(self):
        result = e3_iv_curves.run(de_population=15, de_iterations=40)
        assert result.rms_error_percent < 1.0
        for curve in result.curves:
            delta = np.abs(curve["measured_ma"] - curve["fitted_ma"])
            assert np.max(delta) < 3.0  # mA
        assert "Fig. 1" in e3_iv_curves.format_report(result)

    def test_e4_recovers_gm(self):
        result = e4_sparam_fit.run(de_population=20, de_iterations=60,
                                   n_points=11)
        assert result.extraction.intrinsic.gm == pytest.approx(
            result.gm_true, rel=0.10
        )
        assert "Fig. 2" in e4_sparam_fit.format_report(result)

    def test_e7_dispersion_shapes(self):
        result = e7_passive_dispersion.run()
        # Inductor Q must peak strictly inside the sweep.
        peak = np.argmax(result.inductor_q)
        assert 0 < peak < len(result.inductor_q) - 1
        # eps_eff monotone non-decreasing.
        assert np.all(np.diff(result.eps_eff) >= -1e-9)
        assert "Fig. 4" in e7_passive_dispersion.format_report(result)


@pytest.fixture(scope="module")
def fast_design():
    from repro.experiments.common import selected_design

    return selected_design("fast")


class TestSelectedDesignExperiments:
    def test_e8_tables(self, fast_design):
        result = e8_selected_design.run(profile="fast")
        report = e8_selected_design.format_report(result)
        assert "Table IV" in report
        assert "GPS L1" in report
        assert result.design.snapped_performance.mu_min > 1.0

    def test_e9_measured_sparams(self, fast_design):
        result = e9_measured_sparams.run(n_points=11, profile="fast")
        assert result.worst_s21_deviation_db < 0.6
        assert "Fig. 5" in e9_measured_sparams.format_report(result)

    def test_e10_measured_nf(self, fast_design):
        result = e10_measured_nf.run(n_points=7, profile="fast")
        assert result.nf_designed_max_db < 1.0
        assert abs(
            result.nf_measured_max_db - result.nf_designed_max_db
        ) < 0.4
        assert "Fig. 6" in e10_measured_nf.format_report(result)

    def test_e11_intermodulation(self, fast_design):
        result = e11_intermodulation.run(frequencies=(1.4e9,),
                                         profile="fast")
        two_tone = result.results[0]
        assert two_tone.im3_slope() == pytest.approx(3.0, abs=1e-6)
        assert two_tone.oip3_dbm > 10.0
        assert "Table V" in e11_intermodulation.format_report(result)
