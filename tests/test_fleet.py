"""The shared-memory worker fleet and the backend dispatch around it.

Contracts under test:

* every backend — serial loop, in-process batch, thread shards, worker
  fleet — returns bit-identical values for the same population;
* the compiled LNA objective crosses the process boundary via
  ``objective_factory`` / pickled :class:`CompiledTemplate` (state
  travels, compilation reruns in the worker) and still matches the
  in-process numbers exactly;
* a worker crash mid-generation (``FaultInjector(p_exit=...)``) walks
  the rebuild ladder to the serial fallback whose results are
  bit-for-bit those of a clean run, journals the ladder, and leaves no
  shared-memory segment behind;
* the fleet's shared buffers grow when a larger population arrives;
* ``backend="auto"`` commits to the measured winner and journals the
  decision;
* ``workers=`` on the front-end optimizers is a pure speed knob — the
  sharded run reproduces the single-threaded result exactly.
"""

import glob
import json
import os
import pickle

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledMetricObjective, CompiledTemplate
from repro.experiments.common import reference_device
from repro.obs.journal import RunJournal, set_journal
from repro.optimize import PopulationEvaluator, nsga2
from repro.optimize.batching import BatchShardExecutor
from repro.optimize.faults import FaultInjector
from repro.optimize.goal_attainment import (
    MultiObjectiveProblem,
    goal_attainment_improved,
)


# Module-level (hence picklable) objectives.

def _sphere(x):
    return float(np.sum(np.asarray(x) ** 2))


def _sphere_batch(population):
    return np.sum(np.asarray(population) ** 2, axis=1)


def _biobjective_batch(population):
    population = np.asarray(population, dtype=float)
    return np.stack([
        np.sum(population ** 2, axis=1),
        np.sum((population - 1.0) ** 2, axis=1),
    ], axis=1)


def _biobjective(x):
    return _biobjective_batch(np.atleast_2d(x))[0]


def _batch_problem():
    return MultiObjectiveProblem(
        objectives=_biobjective, n_objectives=2,
        lower=np.zeros(3), upper=np.ones(3),
        objectives_batch=_biobjective_batch,
    )


def _leaked_segments():
    """repro-fleet segments this process left in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob(f"/dev/shm/repro-fleet-{os.getpid()}-*")


@pytest.fixture
def journal(tmp_path):
    """Install a scoped flight recorder; yield its event-list reader."""
    path = str(tmp_path / "journal.jsonl")
    recorder = RunJournal(path, run_id="test")
    previous = set_journal(recorder)

    def events():
        recorder.flush()
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    try:
        yield events
    finally:
        set_journal(previous)
        recorder.close()


# ----------------------------------------------------------------------
# backend equivalence
# ----------------------------------------------------------------------

def test_all_backends_bit_identical():
    rng = np.random.default_rng(7)
    population = rng.standard_normal((17, 4))
    reference = PopulationEvaluator(_sphere, backend="serial")(population)

    for kwargs in (
        dict(objective_batch=_sphere_batch, backend="batch"),
        dict(objective_batch=_sphere_batch, backend="thread", workers=3),
        dict(backend="fleet", workers=2),
        dict(objective_batch=_sphere_batch, backend="fleet", workers=2),
    ):
        with PopulationEvaluator(_sphere, **kwargs) as evaluator:
            values = evaluator(population)
        np.testing.assert_array_equal(values, reference)
    assert not _leaked_segments()


def test_single_worker_degrades_to_in_process():
    evaluator = PopulationEvaluator(_sphere, backend="fleet", workers=1)
    assert evaluator.backend == "serial"
    assert evaluator(np.array([[2.0, 0.0]])).tolist() == [4.0]
    assert evaluator._fleet is None


def test_fleet_rejects_unknown_backend():
    with pytest.raises(ValueError):
        PopulationEvaluator(_sphere, backend="cluster")
    with pytest.raises(ValueError):
        PopulationEvaluator(_sphere, backend="batch")  # no batch callable


# ----------------------------------------------------------------------
# the compiled objective crosses the process boundary
# ----------------------------------------------------------------------

def test_compiled_template_pickle_roundtrip():
    template = AmplifierTemplate(reference_device().small_signal)
    engine = CompiledTemplate(template, verify=False)
    clone = pickle.loads(pickle.dumps(engine))
    population = np.random.default_rng(3).random(
        (4, len(DesignVariables.NAMES)))
    original = engine.performance_batch(population)
    recompiled = clone.performance_batch(population)
    np.testing.assert_array_equal(original.nf_max_db, recompiled.nf_max_db)
    np.testing.assert_array_equal(original.gt_min_db, recompiled.gt_min_db)
    np.testing.assert_array_equal(original.mu_min, recompiled.mu_min)


def test_fleet_matches_in_process_on_compiled_objective():
    template = AmplifierTemplate(reference_device().small_signal)
    factory = CompiledMetricObjective(template)
    objective, objective_batch = factory()
    population = np.random.default_rng(11).random(
        (12, len(DesignVariables.NAMES)))

    with PopulationEvaluator(objective, objective_batch=objective_batch,
                             backend="batch") as batched:
        reference = batched(population)
    with PopulationEvaluator(objective, objective_batch=objective_batch,
                             objective_factory=factory,
                             backend="fleet", workers=2,
                             fleet_capacity=12) as fleet:
        values = fleet(population)
        assert not fleet.health.serial_fallback
    np.testing.assert_array_equal(values, reference)
    assert not _leaked_segments()


# ----------------------------------------------------------------------
# worker crash mid-generation (satellite of the fleet rework)
# ----------------------------------------------------------------------

def test_worker_crash_walks_ladder_to_bit_identical_fallback(journal):
    population = np.random.default_rng(5).standard_normal((9, 3))
    clean = PopulationEvaluator(_sphere, backend="serial")(population)

    # p_exit=1.0: every candidate kills its worker process; the same
    # injector is inert in the parent, so the serial fallback must
    # reproduce the clean run exactly.
    injector = FaultInjector(_sphere, p_exit=1.0, seed=3)
    with PopulationEvaluator(injector, backend="fleet", workers=2,
                             max_pool_rebuilds=1,
                             backoff_base=0.01) as evaluator:
        values = evaluator(population)
        assert evaluator.health.pool_rebuilds == 1
        assert evaluator.health.serial_fallback
        assert evaluator._fleet is None

    np.testing.assert_array_equal(values, clean)
    assert not _leaked_segments()
    names = [record["event"] for record in journal()]
    assert "fleet_spawn" in names
    assert "pool_rebuild" in names
    assert "serial_fallback" in names


# ----------------------------------------------------------------------
# shared-buffer growth
# ----------------------------------------------------------------------

def test_fleet_capacity_grows_with_population(journal):
    with PopulationEvaluator(_sphere, backend="fleet", workers=2,
                             fleet_capacity=4) as evaluator:
        small = np.random.default_rng(0).random((3, 2))
        np.testing.assert_array_equal(
            evaluator(small), _sphere_batch(small))
        first_names = evaluator._fleet.segment_names
        large = np.random.default_rng(1).random((10, 2))
        np.testing.assert_array_equal(
            evaluator(large), _sphere_batch(large))
        assert evaluator._fleet.capacity >= 10
        # Growth replaced the segments; the old ones are unlinked.
        assert evaluator._fleet.segment_names != first_names
    assert not _leaked_segments()
    names = [record["event"] for record in journal()]
    assert "segment_attach" in names
    assert "segment_detach" in names


# ----------------------------------------------------------------------
# measured backend selection
# ----------------------------------------------------------------------

def test_auto_backend_commits_and_journals_decision(journal):
    population = np.random.default_rng(2).random((16, 3))
    reference = _sphere_batch(population)
    with PopulationEvaluator(_sphere, objective_batch=_sphere_batch,
                             backend="auto", workers=2) as evaluator:
        for _ in range(3):
            np.testing.assert_array_equal(evaluator(population), reference)
        assert evaluator.backend in ("batch", "thread")
    decisions = [record for record in journal()
                 if record["event"] == "backend_decision"]
    assert len(decisions) == 1
    assert decisions[0]["chosen"] == evaluator.backend
    assert set(decisions[0]["candidates"]) == {"batch", "thread"}


# ----------------------------------------------------------------------
# thread sharding building blocks and optimizer front-ends
# ----------------------------------------------------------------------

def test_shard_executor_preserves_row_order():
    population = np.arange(22.0).reshape(11, 2)
    with BatchShardExecutor(workers=3) as executor:
        np.testing.assert_array_equal(
            executor.map_batch(_sphere_batch, population),
            _sphere_batch(population))
        np.testing.assert_array_equal(
            executor.map_batch(_biobjective_batch, population),
            _biobjective_batch(population))
        # A single-row population takes the direct (pool-free) path.
        np.testing.assert_array_equal(
            executor.map_batch(_sphere_batch, population[:1]),
            _sphere_batch(population[:1]))


def test_shard_executor_rejects_use_after_close():
    executor = BatchShardExecutor(workers=2)
    executor.close()
    with pytest.raises(RuntimeError):
        executor.map_batch(_sphere_batch, np.ones((4, 2)))


def test_nsga2_workers_bit_identical():
    kwargs = dict(population_size=12, n_generations=6, seed=1)
    single = nsga2(_batch_problem(), **kwargs)
    sharded = nsga2(_batch_problem(), workers=2, **kwargs)
    np.testing.assert_array_equal(sharded.x, single.x)
    np.testing.assert_array_equal(sharded.objectives, single.objectives)
    assert sharded.nfev == single.nfev


def test_goal_attainment_workers_bit_identical():
    goals = np.array([0.2, 0.2])
    kwargs = dict(seed=0, n_probe=16, n_starts=1, tighten_rounds=1)
    single = goal_attainment_improved(_batch_problem(), goals, **kwargs)
    sharded = goal_attainment_improved(_batch_problem(), goals, workers=2,
                                       **kwargs)
    np.testing.assert_array_equal(sharded.x, single.x)
    np.testing.assert_array_equal(sharded.objectives, single.objectives)
    assert sharded.nfev == single.nfev
