"""Smoke tests: every example script must run end-to-end.

The heavyweight optimization examples run in their fast paths; each
must finish without error and print its headline sections.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, argv=()):
    saved_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        return runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = saved_argv


class TestExamples:
    def test_passive_library_tour(self, capsys):
        _run("passive_library_tour.py")
        out = capsys.readouterr().out
        assert "dispersion of Q and ESR" in out
        assert "Wilkinson" in out

    def test_antenna_system_budget(self, capsys):
        _run("antenna_system_budget.py")
        out = capsys.readouterr().out
        assert "system noise figure" in out
        assert "RG-58" in out

    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "design-band performance" in out
        assert "goal attainment factor" in out

    def test_model_extraction(self, capsys):
        _run("model_extraction.py")
        out = capsys.readouterr().out
        assert "best model: angelov" in out
        assert "small-signal intrinsic extraction" in out

    def test_gnss_lna_design_fast(self, capsys):
        _run("gnss_lna_design.py", argv=["--fast"])
        out = capsys.readouterr().out
        assert "step 1: multi-objective optimization" in out
        assert "step 5: two-tone IM3 check" in out

    def test_robust_yield_front_fast(self, capsys):
        _run("robust_yield_front.py", argv=["--fast"])
        out = capsys.readouterr().out
        assert "one batched MNA call" in out
        assert "Monte-Carlo yield" in out
        assert "yield-aware robust Pareto front" in out

    @pytest.mark.parametrize("experiment_id", ["E7"])
    def test_reproduce_paper_subset(self, capsys, experiment_id):
        _run("reproduce_paper.py", argv=["--fast", experiment_id])
        out = capsys.readouterr().out
        assert f"[{experiment_id} completed" in out

    def test_reproduce_paper_rejects_unknown(self):
        with pytest.raises(SystemExit):
            _run("reproduce_paper.py", argv=["E99"])
