"""The compiled evaluation engine against the scalar reference path.

The batched engine's contract is strict equivalence: for any design
vector, :class:`~repro.core.engine.CompiledTemplate` must reproduce
``AmplifierTemplate.evaluate`` to well under 1e-8 on every figure of
merit, and the batch objective protocol must not change optimizer
results beyond that roundoff.
"""

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.engine import CompiledTemplate
from repro.core.objectives import LnaEvaluator, build_lna_problem
from repro.experiments.common import reference_device, selected_design
from repro.optimize.batching import PopulationEvaluator
from repro.optimize.goal_attainment import (
    MultiObjectiveProblem,
    goal_attainment_improved,
)
from repro.optimize.metaheuristics import (
    differential_evolution,
    particle_swarm,
)
from repro.optimize.nsga2 import nsga2


@pytest.fixture(scope="module")
def template():
    return AmplifierTemplate(reference_device().small_signal)


@pytest.fixture(scope="module")
def engine(template):
    return CompiledTemplate(template)


def _assert_matches_scalar(engine, template, unit_x, tolerance=1e-8):
    perf_c = engine.performance(unit_x)
    perf_s = template.evaluate(DesignVariables.from_unit(unit_x),
                               engine.band_grid, engine.guard_grid)
    np.testing.assert_allclose(perf_c.nf_db, perf_s.nf_db, atol=tolerance)
    np.testing.assert_allclose(perf_c.gt_db, perf_s.gt_db, atol=tolerance)
    np.testing.assert_allclose(perf_c.s11_db, perf_s.s11_db, atol=tolerance)
    np.testing.assert_allclose(perf_c.s22_db, perf_s.s22_db, atol=tolerance)
    assert perf_c.mu_min == pytest.approx(perf_s.mu_min, abs=tolerance)
    assert perf_c.ids == pytest.approx(perf_s.ids, abs=tolerance)
    assert perf_c.nf_max_db == pytest.approx(perf_s.nf_max_db,
                                             abs=tolerance)
    assert perf_c.gt_min_db == pytest.approx(perf_s.gt_min_db,
                                             abs=tolerance)


class TestCompiledTemplate:
    def test_matches_scalar_on_random_designs(self, engine, template):
        rng = np.random.default_rng(42)
        for unit_x in rng.random((5, len(DesignVariables.NAMES))):
            _assert_matches_scalar(engine, template, unit_x)

    def test_matches_scalar_on_selected_design(self, engine, template):
        design = selected_design("fast")
        _assert_matches_scalar(engine, template,
                               design.optimizer_result.x)

    def test_batch_rows_match_single_calls(self, engine):
        rng = np.random.default_rng(7)
        unit_x = rng.random((6, len(DesignVariables.NAMES)))
        batch = engine.performance_batch(unit_x)
        assert len(batch) == 6
        for i in range(6):
            single = engine.performance(unit_x[i])
            np.testing.assert_allclose(batch.nf_db[i], single.nf_db,
                                       atol=1e-12)
            np.testing.assert_allclose(batch.gt_db[i], single.gt_db,
                                       atol=1e-12)
            assert batch.mu_min[i] == pytest.approx(single.mu_min,
                                                    abs=1e-12)


class TestLnaEvaluatorCache:
    def test_repeat_calls_hit_the_cache(self, template):
        evaluator = LnaEvaluator(template)
        x = np.full(len(DesignVariables.NAMES), 0.4)
        evaluator.performance(x)
        assert evaluator.n_solves == 1
        assert evaluator.cache_hits == 0
        evaluator.performance(x)
        evaluator.performance(x.copy())
        assert evaluator.n_solves == 1
        assert evaluator.cache_hits == 2

    def test_batch_deduplicates_and_counts_hits(self, template):
        evaluator = LnaEvaluator(template)
        rng = np.random.default_rng(5)
        unique = rng.random((3, len(DesignVariables.NAMES)))
        batch = np.vstack([unique, unique[0], unique[2]])
        perfs = evaluator.performance_batch(batch)
        assert len(perfs) == 5
        assert evaluator.n_solves == 3          # duplicates solved once
        assert evaluator.cache_hits == 0        # nothing was cached before
        perfs_again = evaluator.performance_batch(unique)
        assert evaluator.n_solves == 3
        assert evaluator.cache_hits == 3
        for a, b in zip(perfs[:3], perfs_again):
            assert a is b                        # served from the LRU store

    def test_scalar_engine_agrees_with_compiled(self, template):
        compiled = LnaEvaluator(template, engine="compiled")
        scalar = LnaEvaluator(template, engine="scalar")
        assert compiled.engine == "compiled"
        assert scalar.engine == "scalar"
        x = np.full(len(DesignVariables.NAMES), 0.55)
        pc = compiled.performance(x)
        ps = scalar.performance(x)
        np.testing.assert_allclose(pc.nf_db, ps.nf_db, atol=1e-8)
        assert pc.mu_min == pytest.approx(ps.mu_min, abs=1e-8)

    def test_unknown_engine_rejected(self, template):
        with pytest.raises(ValueError):
            LnaEvaluator(template, engine="quantum")

    def test_cache_key_includes_template_fingerprint(self, template):
        """Regression: two evaluators with different problems must not
        produce colliding cache keys for the same design vector."""
        from repro.core.bands import design_grid, stability_grid

        a = LnaEvaluator(template, engine="scalar")
        b = LnaEvaluator(template, band_grid=design_grid(9),
                         guard_grid=stability_grid(12), engine="scalar")
        x = np.full(len(DesignVariables.NAMES), 0.4)
        assert a._key(x) != b._key(x)
        # Same configuration -> same key (the fingerprint is stable).
        c = LnaEvaluator(template, engine="scalar")
        assert a._key(x) == c._key(x)

    def test_cache_key_folds_negative_zero(self, template):
        evaluator = LnaEvaluator(template, engine="scalar")
        x = np.full(len(DesignVariables.NAMES), 0.25)
        x_neg = x.copy()
        x_neg[0] = -0.0
        x_pos = x.copy()
        x_pos[0] = 0.0
        # -0.0 == 0.0 numerically; the key must agree too.
        assert evaluator._key(x_neg) == evaluator._key(x_pos)

    def test_invalidate_cache_clears_and_refingerprints(self, template):
        evaluator = LnaEvaluator(template)
        x = np.full(len(DesignVariables.NAMES), 0.45)
        evaluator.performance(x)
        assert evaluator.n_solves == 1
        old_key = evaluator._key(x)
        evaluator.invalidate_cache()
        # The store is empty again: the same point solves afresh.
        evaluator.performance(x)
        assert evaluator.n_solves == 2
        # Unchanged configuration keeps the same fingerprint.
        assert evaluator._key(x) == old_key


class TestBatchObjectiveProtocol:
    def test_problem_carries_batch_callables(self, template):
        problem = build_lna_problem(template)
        x = np.full(len(DesignVariables.NAMES), 0.5)
        batch = np.vstack([x, x * 0.8])
        f_batch = problem.objectives_batch(batch)
        g_batch = problem.constraints_batch(batch)
        np.testing.assert_allclose(f_batch[0], problem.objectives(x),
                                   atol=1e-12)
        np.testing.assert_allclose(g_batch[0], problem.constraints(x),
                                   atol=1e-12)
        assert f_batch.shape == (2, 2)
        assert g_batch.shape == (2, 5)

    def test_population_evaluator_matches_loop(self):
        def sphere(x):
            return float(np.sum(x ** 2))

        def sphere_batch(x):
            return np.sum(x ** 2, axis=1)

        rng = np.random.default_rng(0)
        population = rng.random((8, 3))
        looped = PopulationEvaluator(sphere)(population)
        batched = PopulationEvaluator(sphere, sphere_batch)(population)
        np.testing.assert_allclose(batched, looped, atol=1e-15)

    def test_pso_batch_is_trajectory_identical(self):
        def rosenbrock(x):
            return float(
                100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2
            )

        def rosenbrock_batch(x):
            return 100.0 * (x[:, 1] - x[:, 0] ** 2) ** 2 + (
                1.0 - x[:, 0]
            ) ** 2

        kwargs = dict(lower=[-2, -2], upper=[2, 2], n_particles=12,
                      max_iterations=40, seed=3)
        sequential = particle_swarm(rosenbrock, **kwargs)
        batched = particle_swarm(rosenbrock,
                                 objective_batch=rosenbrock_batch, **kwargs)
        np.testing.assert_array_equal(batched.x, sequential.x)
        assert batched.fun == sequential.fun
        assert batched.nfev == sequential.nfev

    def test_de_batch_converges_on_sphere(self):
        def sphere(x):
            return float(np.sum(x ** 2))

        def sphere_batch(x):
            return np.sum(x ** 2, axis=1)

        result = differential_evolution(
            sphere, lower=[-3] * 3, upper=[3] * 3, population_size=20,
            max_iterations=150, seed=1, objective_batch=sphere_batch,
        )
        assert result.fun < 1e-6
        assert result.nfev == 20 * (1 + result.n_iterations)

    def test_nsga2_batch_matches_scalar_run(self):
        def objectives(x):
            return np.array([x[0], (1.0 + x[1]) / max(x[0], 1e-9)])

        def objectives_batch(x):
            return np.column_stack([
                x[:, 0], (1.0 + x[:, 1]) / np.maximum(x[:, 0], 1e-9)
            ])

        base = dict(n_objectives=2, lower=np.array([0.1, 0.0]),
                    upper=np.array([1.0, 5.0]))
        scalar_problem = MultiObjectiveProblem(objectives=objectives, **base)
        batch_problem = MultiObjectiveProblem(
            objectives=objectives, objectives_batch=objectives_batch, **base
        )
        kwargs = dict(population_size=16, n_generations=12, seed=2)
        front_scalar = nsga2(scalar_problem, **kwargs)
        front_batch = nsga2(batch_problem, **kwargs)
        np.testing.assert_allclose(front_batch.x, front_scalar.x,
                                   atol=1e-12)
        assert front_batch.nfev == front_scalar.nfev

    def test_improved_goal_attainment_batch_probe_matches(self):
        def objectives(x):
            return np.array([np.sum((x - 0.3) ** 2),
                             np.sum((x - 0.7) ** 2)])

        def objectives_batch(x):
            return np.column_stack([
                np.sum((x - 0.3) ** 2, axis=1),
                np.sum((x - 0.7) ** 2, axis=1),
            ])

        def constraints(x):
            return np.array([x[0] - 0.9])

        def constraints_batch(x):
            return x[:, :1] - 0.9

        base = dict(n_objectives=2, lower=np.zeros(2), upper=np.ones(2),
                    constraints=constraints)
        scalar_problem = MultiObjectiveProblem(objectives=objectives, **base)
        batch_problem = MultiObjectiveProblem(
            objectives=objectives, objectives_batch=objectives_batch,
            constraints_batch=constraints_batch, **base
        )
        goals = np.array([0.05, 0.05])
        r_scalar = goal_attainment_improved(scalar_problem, goals, seed=4,
                                            n_probe=16, n_starts=2)
        r_batch = goal_attainment_improved(batch_problem, goals, seed=4,
                                           n_probe=16, n_starts=2)
        np.testing.assert_allclose(r_batch.x, r_scalar.x, atol=1e-10)
        assert r_batch.nfev == r_scalar.nfev
