"""Seeded fuzz harness for the physical-invariant guards.

Every test here is deterministic (fixed seeds, derandomized
hypothesis), fast (< 60 s in total), and asserts one of two safety
properties:

* **no false positives** — healthy randomly-generated fixtures sail
  through strict mode without a :class:`ContractViolation`;
* **no silent garbage** — corrupted inputs (perturbed Touchstone
  bytes, near-singular netlists, bit-flipped checkpoints) either
  produce a typed error / quarantine or finite, contract-clean data,
  never NaN/Inf passed downstream without complaint.

Run in CI with ``REPRO_GUARDS=strict`` (the fuzz-smoke job) so that a
contract regression fails loudly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acsolver import solve_ac
from repro.analysis.conditioning import equilibrated_solve
from repro.analysis.netlist import Circuit
from repro.guards import (
    ContractViolation,
    GuardWarning,
    check_noise_correlation,
    check_passive_network,
    guard_mode,
)
from repro.optimize.checkpoint import Checkpoint, FileCheckpointStore
from repro.rf.frequency import FrequencyGrid
from repro.rf.touchstone import TouchstoneData, read_touchstone, write_touchstone
from repro.rf.twoport import TwoPort

FUZZ_SETTINGS = dict(max_examples=25, derandomize=True, deadline=None)


def _random_passive_ladder(rng, n_sections):
    """A random series/shunt RLC ladder between two 50-ohm ports."""
    circuit = Circuit("fuzz")
    circuit.port("p1", "n0", z0=50.0)
    node = "n0"
    for k in range(n_sections):
        nxt = f"n{k + 1}"
        kind = rng.integers(0, 3)
        if kind == 0:
            circuit.resistor(f"R{k}", node, nxt,
                             float(rng.uniform(1.0, 200.0)))
        elif kind == 1:
            circuit.inductor(f"L{k}", node, nxt,
                             float(rng.uniform(0.5e-9, 30e-9)))
        else:
            circuit.capacitor(f"C{k}", node, nxt,
                              float(rng.uniform(0.5e-12, 50e-12)))
        shunt = rng.integers(0, 3)
        if shunt == 0:
            circuit.resistor(f"Rs{k}", nxt, "gnd",
                             float(rng.uniform(10.0, 1000.0)))
        elif shunt == 1:
            circuit.capacitor(f"Cs{k}", nxt, "gnd",
                              float(rng.uniform(0.1e-12, 20e-12)))
        # shunt == 2: no shunt branch
        node = nxt
    circuit.port("p2", node, z0=50.0)
    return circuit


class TestRandomPassiveNetworks:
    """Healthy random passives must never trip a contract (strict mode)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_ladders_satisfy_passive_contracts(self, seed):
        rng = np.random.default_rng(1000 + seed)
        circuit = _random_passive_ladder(rng, int(rng.integers(1, 5)))
        grid = FrequencyGrid.logarithmic(0.2e9, 4.0e9, 7)
        with guard_mode("strict"):
            result = solve_ac(circuit, grid)
            check_passive_network(result.s, f"fuzz ladder {seed}",
                                  cy=result.cy, tol=1e-6)
        assert np.all(np.isfinite(result.s))

    @pytest.mark.parametrize("seed", range(10))
    def test_thermal_noise_correlation_is_psd(self, seed):
        rng = np.random.default_rng(2000 + seed)
        circuit = _random_passive_ladder(rng, int(rng.integers(1, 4)))
        grid = FrequencyGrid.linear(0.5e9, 3.0e9, 5)
        result = solve_ac(circuit, grid)
        with guard_mode("strict"):
            check_noise_correlation(result.cy, f"fuzz cy {seed}", tol=1e-6)


class TestPerturbedTouchstone:
    """Mutated .s2p text never silently yields non-finite S-data."""

    def _clean_text(self):
        grid = FrequencyGrid.linear(1.0e9, 2.0e9, 5)
        rng = np.random.default_rng(3)
        s = 0.3 * (rng.standard_normal((5, 2, 2))
                   + 1j * rng.standard_normal((5, 2, 2)))
        return write_touchstone(
            TouchstoneData(network=TwoPort(grid, s, z0=50.0))
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(**FUZZ_SETTINGS)
    def test_mutated_file_raises_or_parses_finite(self, seed):
        rng = np.random.default_rng(seed)
        text = self._clean_text()
        mutation = rng.integers(0, 4)
        if mutation == 0:      # inject a textual NaN / Inf token
            token = rng.choice(["nan", "inf", "-inf"])
            lines = text.splitlines()
            row = int(rng.integers(2, len(lines)))
            fields = lines[row].split()
            fields[int(rng.integers(0, len(fields)))] = token
            lines[row] = " ".join(fields)
            text = "\n".join(lines) + "\n"
        elif mutation == 1:    # drop a random line
            lines = text.splitlines()
            del lines[int(rng.integers(0, len(lines)))]
            text = "\n".join(lines) + "\n"
        elif mutation == 2:    # truncate mid-file
            text = text[: int(rng.integers(10, len(text)))]
            if "\n" not in text:
                # Keep at least one newline so read_touchstone treats
                # the string as a file body, not a path.
                text += "\n"
        else:                  # shuffle data lines (breaks monotonic grid)
            lines = text.splitlines()
            header, data = lines[:2], lines[2:]
            rng.shuffle(data)
            text = "\n".join(header + data) + "\n"
        with guard_mode("strict"), np.errstate(invalid="ignore"):
            try:
                parsed = read_touchstone(text)
            except (ValueError, IndexError):
                return  # typed rejection (ContractViolation is a ValueError)
            assert np.all(np.isfinite(parsed.network.s))
            assert np.all(np.diff(parsed.network.frequency.f_hz) > 0)


class TestNearSingularNetlists:
    """Pathological element values: typed error or finite output."""

    @pytest.mark.parametrize("seed", range(15))
    def test_extreme_element_values(self, seed):
        rng = np.random.default_rng(4000 + seed)
        circuit = Circuit("singularish")
        circuit.port("p1", "a", z0=50.0)
        circuit.port("p2", "b", z0=50.0)
        # Resistances drawn log-uniformly over 24 decades: includes
        # femto-ohm shorts and peta-ohm opens in one matrix.
        r_bridge = 10.0 ** rng.uniform(-12.0, 12.0)
        r_shunt = 10.0 ** rng.uniform(-12.0, 12.0)
        circuit.resistor("Rb", "a", "b", float(r_bridge))
        circuit.resistor("Rs", "b", "gnd", float(r_shunt))
        grid = FrequencyGrid.linear(1.0e9, 2.0e9, 3)
        with guard_mode("warn"):
            try:
                result = solve_ac(circuit, grid)
            except ValueError:
                return  # typed rejection is acceptable
            assert np.all(np.isfinite(result.s))

    @given(span=st.floats(min_value=0.0, max_value=120.0),
           seed=st.integers(min_value=0, max_value=1_000))
    @settings(**FUZZ_SETTINGS)
    def test_equilibrated_solve_never_silently_wrong(self, span, seed):
        rng = np.random.default_rng(seed)
        n = 4
        base = (rng.standard_normal((n, n))
                + 1j * rng.standard_normal((n, n)))
        row = 10.0 ** rng.uniform(-span / 2.0, span / 2.0, size=n)
        a = row[:, None] * base
        x_true = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        b = a @ x_true
        x = equilibrated_solve(a, b)
        # Row scaling is information-preserving, so the equilibrated
        # solver must recover the solution regardless of the span.
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-9)


class TestCheckpointCorruptionFuzz:
    """Random byte corruption never crashes resume in warn mode."""

    def _saved_store(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path / "run.ckpt"))
        payload = {"pop": np.arange(12.0).reshape(3, 4), "gen": 7}
        store.save(Checkpoint("de", 7, {"s": 1}, payload))
        store.save(Checkpoint("de", 8, {"s": 1}, payload))
        return store

    @pytest.mark.parametrize("seed", range(20))
    def test_random_corruption_quarantines_or_recovers(self, tmp_path, seed):
        rng = np.random.default_rng(5000 + seed)
        store = self._saved_store(tmp_path)
        blob = bytearray((tmp_path / "run.ckpt").read_bytes())
        mode = rng.integers(0, 3)
        if mode == 0:      # flip up to 8 random bits
            for _ in range(int(rng.integers(1, 9))):
                blob[int(rng.integers(0, len(blob)))] ^= int(
                    1 << rng.integers(0, 8))
        elif mode == 1:    # truncate
            del blob[int(rng.integers(0, len(blob))):]
        else:              # garbage prefix
            blob[:4] = rng.integers(0, 256, size=4, dtype=np.uint8).tobytes()
        (tmp_path / "run.ckpt").write_bytes(bytes(blob))
        with guard_mode("warn"), pytest.warns(UserWarning):
            loaded = store.load()
        # Either the corruption was caught (fall back to the rotated
        # last-good file) or, vanishingly rarely, the CRC happened to
        # still match; in every case the result is a valid Checkpoint.
        assert loaded is None or isinstance(loaded, Checkpoint)
        if loaded is not None:
            assert loaded.iteration in (7, 8)

    @pytest.mark.parametrize("seed", range(5))
    def test_corrupt_both_files_returns_none(self, tmp_path, seed):
        rng = np.random.default_rng(6000 + seed)
        store = self._saved_store(tmp_path)
        for name in ("run.ckpt", "run.ckpt.prev"):
            path = tmp_path / name
            blob = bytearray(path.read_bytes())
            cut = int(rng.integers(1, max(2, len(blob) // 2)))
            path.write_bytes(bytes(blob[:cut]))
        with guard_mode("warn"), pytest.warns(UserWarning):
            assert store.load() is None
        assert (tmp_path / "run.ckpt.corrupt").exists()

    def test_legacy_pickle_garbage_object_quarantined(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        store = FileCheckpointStore(str(path))
        with guard_mode("warn"), pytest.warns(UserWarning):
            assert store.load() is None


class TestStrictModeCleanOnHealthyFixtures:
    """The CI smoke gate: nothing in a healthy end-to-end sweep warns."""

    def test_reference_sweep_is_contract_clean(self):
        from repro.experiments import e7_passive_dispersion as e7
        from repro.passives.splitter import ResistiveSplitter

        with guard_mode("strict"):
            result = e7.run(n_points=7, splitter=ResistiveSplitter())
        assert np.all(np.isfinite(result.splitter_insertion_db))
