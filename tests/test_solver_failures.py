"""Per-candidate failure isolation in the solver and evaluation stack.

Covers the degradation chain bottom-up: the isolated tensor solve
(singular rows come back flagged, healthy rows bit-identical), the
compiled engine's bad-bias masking and scalar fallback, and the
LnaEvaluator's penalty semantics (failures counted, logged, and never
cached as successes).
"""

import numpy as np
import pytest

from repro.analysis.compiled import (
    BatchNoiseSource,
    solve_tensor_batch,
    solve_tensor_batch_isolated,
)
from repro.analysis.dc import DcConvergenceError
from repro.core.amplifier import (
    PENALTY_GT_DB,
    PENALTY_NF_DB,
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import CompiledTemplate
from repro.core.objectives import LnaEvaluator
from repro.experiments.common import reference_device
from repro.optimize.faults import CATEGORY_BAD_BIAS, CATEGORY_DC


# ----------------------------------------------------------------------
# solve_tensor_batch_isolated
# ----------------------------------------------------------------------

def _healthy_tensor(n_batch=4, n_freq=3, n_nodes=2, scale=1.0):
    """A well-conditioned two-node ladder, batched."""
    y = np.zeros((n_batch, n_freq, n_nodes, n_nodes), dtype=complex)
    for b in range(n_batch):
        g = scale * (1.0 + 0.1 * b)
        y[b, :, 0, 0] = 2.0 * g
        y[b, :, 1, 1] = 2.0 * g
        y[b, :, 0, 1] = -g
        y[b, :, 1, 0] = -g
    return y


PORTS = np.array([0, 1])
Z0 = 50.0


def test_isolated_matches_plain_solve_on_healthy_batch():
    y = _healthy_tensor()
    psd = np.full((4, 3), 1e-20)  # per-candidate scalar density
    sources = [BatchNoiseSource(np.array([[1.0], [0.0]], dtype=complex),
                                psd)]
    s_ref, cy_ref, _ = solve_tensor_batch(y.copy(), PORTS, Z0, sources)
    s, cy, _, failed = solve_tensor_batch_isolated(y, PORTS, Z0, sources)
    assert not np.any(failed)
    assert np.array_equal(s, s_ref)
    assert np.array_equal(cy, cy_ref)


def test_isolated_does_not_mutate_input_tensor():
    y = _healthy_tensor()
    before = y.copy()
    solve_tensor_batch_isolated(y, PORTS, Z0)
    assert np.array_equal(y, before)
    # The raising variant used to stamp the port loads in place; both
    # kernels are non-mutating now.
    solve_tensor_batch(y, PORTS, Z0)
    assert np.array_equal(y, before)


def _make_singular(y, index):
    """Make row *index* exactly singular after the 1/z0 load stamping."""
    y[index] = 1.0
    y[index, :, 0, 0] -= 1.0 / Z0
    y[index, :, 1, 1] -= 1.0 / Z0


def test_isolated_flags_singular_rows_healthy_rows_bit_identical():
    y = _healthy_tensor(n_batch=5)
    _make_singular(y, 1)
    _make_singular(y, 3)
    psd = np.full((5, 3), 1e-20)
    sources = [BatchNoiseSource(np.array([[1.0], [0.0]], dtype=complex),
                                psd)]
    s, cy, _, failed = solve_tensor_batch_isolated(y, PORTS, Z0, sources)
    assert failed.tolist() == [False, True, False, True, False]
    assert np.all(s[[1, 3]] == 0.0)
    assert np.all(cy[[1, 3]] == 0.0)

    # Healthy rows must equal a batch solve of only the healthy rows,
    # with the per-candidate noise densities sliced accordingly.
    healthy = [0, 2, 4]
    sub_sources = [BatchNoiseSource(sources[0].columns, psd[healthy])]
    s_ref, cy_ref, _ = solve_tensor_batch(y[healthy].copy(), PORTS, Z0,
                                          sub_sources)
    assert np.array_equal(s[healthy], s_ref)
    assert np.array_equal(cy[healthy], cy_ref)


def test_isolated_all_rows_singular():
    # Pre-compensate the diagonal so the tensor is exactly singular
    # (rank 1) *after* the solver stamps the 1/z0 reference loads.
    y = np.ones((3, 2, 2, 2), dtype=complex)
    y[:, :, 0, 0] -= 1.0 / Z0
    y[:, :, 1, 1] -= 1.0 / Z0
    s, cy, _, failed = solve_tensor_batch_isolated(y, PORTS, Z0)
    assert np.all(failed)
    assert np.all(s == 0.0) and np.all(cy == 0.0)


def test_isolated_shape_validation():
    with pytest.raises(ValueError):
        solve_tensor_batch_isolated(np.zeros((2, 3, 4)), PORTS, Z0)


# ----------------------------------------------------------------------
# compiled engine: bad-bias masking and penalty rows
# ----------------------------------------------------------------------

class BiasFaultDcModel:
    """Delegates to the real DC model, but reports a non-saturated
    device (gds < 0) below a vgs threshold."""

    def __init__(self, inner, vgs_threshold):
        self._inner = inner
        self._threshold = float(vgs_threshold)

    def gds(self, vgs, vds):
        g = np.asarray(self._inner.gds(vgs, vds), dtype=float)
        return np.where(np.asarray(vgs) < self._threshold, -1e-3, g)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ExplodingDcModel:
    """Raises DcConvergenceError whenever the bias point is queried."""

    def __init__(self, inner):
        self._inner = inner

    def gm(self, vgs, vds):
        raise DcConvergenceError("Newton iteration diverged")

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture()
def template():
    # reference_device() is lru_cached, so the small-signal device is
    # shared process-wide; restore its DC model after each test no
    # matter which fault wrapper the test installed.
    device = reference_device().small_signal
    honest = device.dc_model
    yield AmplifierTemplate(device)
    device.dc_model = honest


@pytest.fixture(scope="module")
def grids():
    return design_grid(5), stability_grid(6)


def test_engine_isolated_penalizes_bad_bias_rows(template, grids):
    band, guard = grids
    compiled = CompiledTemplate(template, band, guard)
    n = len(DesignVariables.NAMES)
    unit = np.tile(np.full(n, 0.5), (4, 1))
    unit[1, 0] = 0.0   # vgs at the box floor (0.35 V) -> flagged bad
    unit[3, 0] = 0.02
    reference = compiled.performance_batch(unit)

    # Patch after compilation so _verify ran against the honest model.
    template.device.dc_model = BiasFaultDcModel(template.device.dc_model,
                                                vgs_threshold=0.40)
    batch, failures, n_fallbacks = compiled.performance_batch_isolated(unit)
    assert n_fallbacks == 0
    assert [f is None for f in failures] == [True, False, True, False]
    assert failures[1].category == CATEGORY_BAD_BIAS
    assert failures[3].category == CATEGORY_BAD_BIAS
    # Penalty rows carry the documented worst-case figures.
    assert batch.nf_max_db[1] == PENALTY_NF_DB
    assert batch.gt_min_db[3] == PENALTY_GT_DB
    assert batch.mu_min[1] == 0.0
    # Healthy rows are bit-identical to the unpatched batch path.
    for name in ("nf_db", "gt_db", "s11_db", "s22_db", "mu_min", "ids"):
        got = getattr(batch, name)
        expected = getattr(reference, name)
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[2], expected[2])


def test_engine_raising_path_still_raises_on_bad_bias(template, grids):
    band, guard = grids
    compiled = CompiledTemplate(template, band, guard)
    template.device.dc_model = BiasFaultDcModel(template.device.dc_model,
                                                vgs_threshold=0.40)
    n = len(DesignVariables.NAMES)
    unit = np.tile(np.full(n, 0.5), (2, 1))
    unit[0, 0] = 0.0
    with pytest.raises(ValueError, match="saturated forward region"):
        compiled.performance_batch(unit)


def test_dc_convergence_error_propagates_through_scalar_evaluate(
        template, grids):
    band, guard = grids
    template.device.dc_model = ExplodingDcModel(template.device.dc_model)
    with pytest.raises(DcConvergenceError):
        template.evaluate(DesignVariables(), band, guard)


# ----------------------------------------------------------------------
# LnaEvaluator: penalties counted, logged, never cached
# ----------------------------------------------------------------------

def test_evaluator_scalar_absorbs_dc_failure_and_does_not_cache(
        template, grids):
    band, guard = grids
    evaluator = LnaEvaluator(template, band, guard, engine="scalar")
    template.device.dc_model = ExplodingDcModel(template.device.dc_model)

    x = np.full(len(DesignVariables.NAMES), 0.5)
    perf = evaluator.performance(x)
    assert perf.is_failure
    assert perf.failure.category == CATEGORY_DC
    assert perf.nf_max_db == PENALTY_NF_DB
    assert evaluator.health.failures == {CATEGORY_DC: 1}
    assert len(evaluator.failure_log) == 1
    assert evaluator.n_solves == 1

    # Same point again: the failure was not cached, so it re-attempts.
    evaluator.performance(x)
    assert evaluator.n_solves == 2
    assert evaluator.cache_hits == 0
    assert evaluator.health.failures == {CATEGORY_DC: 2}


def test_evaluator_recovers_after_transient_failure(template, grids):
    band, guard = grids
    evaluator = LnaEvaluator(template, band, guard, engine="scalar")
    honest = template.device.dc_model
    template.device.dc_model = ExplodingDcModel(honest)
    x = np.full(len(DesignVariables.NAMES), 0.5)
    assert evaluator.performance(x).is_failure

    template.device.dc_model = honest  # the "transient" clears
    recovered = evaluator.performance(x)
    assert not recovered.is_failure
    assert np.all(np.isfinite(recovered.nf_db))
    # ... and the healthy result does get cached.
    again = evaluator.performance(x)
    assert again is recovered
    assert evaluator.cache_hits == 1


def test_evaluator_compiled_batch_mixes_penalty_and_healthy(
        template, grids):
    band, guard = grids
    evaluator = LnaEvaluator(template, band, guard)  # compiled
    assert evaluator.engine == "compiled"
    template.device.dc_model = BiasFaultDcModel(template.device.dc_model,
                                                vgs_threshold=0.40)
    n = len(DesignVariables.NAMES)
    unit = np.tile(np.full(n, 0.5), (3, 1))
    unit[1, 0] = 0.0
    perfs = evaluator.performance_batch(unit)
    assert not perfs[0].is_failure
    assert perfs[1].is_failure
    assert perfs[1].failure.category == CATEGORY_BAD_BIAS
    assert evaluator.health.failures == {CATEGORY_BAD_BIAS: 1}

    # Healthy results were cached; the failed one was not.
    perfs2 = evaluator.performance_batch(unit)
    assert evaluator.health.failures == {CATEGORY_BAD_BIAS: 2}
    assert perfs2[0] is perfs[0]


def test_evaluator_on_failure_raise_restores_old_behaviour(
        template, grids):
    band, guard = grids
    evaluator = LnaEvaluator(template, band, guard, engine="scalar",
                             on_failure="raise")
    template.device.dc_model = ExplodingDcModel(template.device.dc_model)
    with pytest.raises(DcConvergenceError):
        evaluator.performance(np.full(len(DesignVariables.NAMES), 0.5))


def test_evaluator_rejects_unknown_on_failure(template):
    with pytest.raises(ValueError):
        LnaEvaluator(template, on_failure="explode")


def test_penalty_performance_violates_every_constraint():
    grid = design_grid(5)
    perf = AmplifierPerformance.penalty(grid)
    assert perf.failure is None and not perf.is_failure
    assert perf.nf_max_db == PENALTY_NF_DB
    assert perf.gt_min_db == PENALTY_GT_DB
    assert perf.mu_min == 0.0
    assert np.all(perf.s11_db == 0.0)
    assert np.all(np.isfinite(perf.nf_db))
