"""Additional system-budget and NPort-through-noise consistency tests."""

import numpy as np
import pytest

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.system_budget import SystemBudget
from repro.passives.coax import rg58_like
from repro.passives.splitter import WilkinsonDivider
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import friis_cascade
from repro.util.units import from_db10


@pytest.fixture(scope="module")
def template():
    from repro.devices.reference import make_reference_device

    return AmplifierTemplate(make_reference_device().small_signal)


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1.2e9, 1.6e9, 5)


class TestBudgetConsistency:
    def test_correlation_cascade_matches_friis(self, template, fg):
        """The full correlation-matrix budget must agree with a manual
        Friis computation built from per-stage NF and available gain
        (both derived independently)."""
        from repro.rf.gain import available_gain

        budget = SystemBudget(template, DesignVariables(),
                              downlead=rg58_like(10.0))
        result = budget.evaluate(fg)

        preamp = template.solve(DesignVariables(), fg)
        cable = budget.downlead.as_noisy_twoport(fg)
        f_preamp = preamp.noise_factor(1 / 50.0)
        # Stage 2's Friis terms use the available gain from the
        # preamp's output reflection; with a well-matched preamp the
        # 50-ohm-source approximation is within a few hundredths dB.
        gain_preamp = available_gain(preamp.network.s, 0.0)
        f_cable = cable.noise_factor(1 / 50.0)
        f_total = friis_cascade([f_preamp, f_cable],
                                [gain_preamp, np.ones_like(gain_preamp)])
        friis_nf_db = 10 * np.log10(f_total)
        np.testing.assert_allclose(result.nf_with_preamp_db, friis_nf_db,
                                   atol=0.06)

    def test_summary_keys(self, template, fg):
        budget = SystemBudget(template, DesignVariables(),
                              downlead=rg58_like(10.0),
                              splitter=WilkinsonDivider(1.4e9))
        summary = budget.evaluate(fg).summary()
        assert set(summary) == {
            "NF_with_preamp_max_dB",
            "NF_without_preamp_max_dB",
            "improvement_min_dB",
            "gain_with_preamp_min_dB",
        }

    def test_receiver_port_choice_symmetric(self, template, fg):
        a = SystemBudget(template, DesignVariables(),
                         downlead=rg58_like(10.0),
                         splitter=WilkinsonDivider(1.4e9),
                         receiver_port="p2").evaluate(fg)
        b = SystemBudget(template, DesignVariables(),
                         downlead=rg58_like(10.0),
                         splitter=WilkinsonDivider(1.4e9),
                         receiver_port="p3").evaluate(fg)
        np.testing.assert_allclose(a.nf_with_preamp_db,
                                   b.nf_with_preamp_db, atol=1e-9)

    def test_splitter_path_costs_about_3db(self, template, fg):
        with_splitter = SystemBudget(
            template, DesignVariables(), downlead=rg58_like(10.0),
            splitter=WilkinsonDivider(1.4e9),
        ).evaluate(fg)
        without = SystemBudget(
            template, DesignVariables(), downlead=rg58_like(10.0),
        ).evaluate(fg)
        delta = (without.gain_with_preamp_db
                 - with_splitter.gain_with_preamp_db)
        assert np.all(delta > 2.8)
        assert np.all(delta < 4.5)

    def test_passive_chain_nf_equals_loss(self, template, fg):
        # Without the preamp the chain is passive near ambient: NF is
        # within ~0.1 dB of its insertion loss.
        budget = SystemBudget(template, DesignVariables(),
                              downlead=rg58_like(10.0))
        result = budget.evaluate(fg)
        np.testing.assert_allclose(
            result.nf_without_preamp_db,
            -result.gain_without_preamp_db,
            atol=0.15,
        )

    def test_improvement_is_ratio_of_factors(self, template, fg):
        result = SystemBudget(template, DesignVariables(),
                              downlead=rg58_like(10.0)).evaluate(fg)
        improvement = result.improvement_db()
        ratio = from_db10(result.nf_without_preamp_db) / from_db10(
            result.nf_with_preamp_db
        )
        np.testing.assert_allclose(improvement,
                                   10 * np.log10(ratio), atol=1e-9)
