"""Edge-case tests for the AC solver's callable-evaluation layer."""

import numpy as np
import pytest

from repro.analysis.acsolver import _eval_block, _eval_psd, solve_ac
from repro.analysis.netlist import Circuit
from repro.rf.frequency import FrequencyGrid


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1e9, 2e9, 4)


class TestEvalBlock:
    def test_vectorized_callable_used_directly(self):
        f = np.array([1e9, 2e9])
        calls = []

        def vectorized(f_hz):
            calls.append(np.size(f_hz))
            y = np.asarray(f_hz) * 1e-12
            out = np.zeros((np.size(f_hz), 2, 2), dtype=complex)
            out[:, 0, 0] = y
            return out

        result = _eval_block(vectorized, f, 2)
        assert result.shape == (2, 2, 2)
        assert calls == [2]  # one vectorized call, no per-point loop

    def test_scalar_callable_looped(self):
        f = np.array([1e9, 2e9, 3e9])

        def scalar_only(f_hz):
            # Would raise on array input (float() of an array).
            value = float(f_hz) * 1e-12
            return np.full((2, 2), value, dtype=complex)

        result = _eval_block(scalar_only, f, 2)
        assert result.shape == (3, 2, 2)
        assert result[2, 0, 0] == pytest.approx(3e-3)

    def test_single_point_matrix_promoted(self):
        f = np.array([1e9])

        def single(f_hz):
            return np.eye(2, dtype=complex)

        result = _eval_block(single, f, 2)
        assert result.shape == (1, 2, 2)


class TestEvalPsd:
    def test_constant_broadcast(self):
        f = np.array([1e9, 2e9])
        result = _eval_psd(lambda f_hz: 3.0, f)
        np.testing.assert_array_equal(result, [3.0, 3.0])

    def test_vectorized_passthrough(self):
        f = np.array([1e9, 2e9])
        result = _eval_psd(lambda f_hz: np.asarray(f_hz) * 1e-9, f)
        np.testing.assert_allclose(result, [1.0, 2.0])

    def test_scalar_only_looped(self):
        f = np.array([1e9, 2e9])

        def scalar_only(f_hz):
            return float(f_hz) * 1e-9

        np.testing.assert_allclose(_eval_psd(scalar_only, f), [1.0, 2.0])


class TestSolverMisc:
    def test_compute_noise_false_gives_zero_cy(self, fg):
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 75.0)
        result = solve_ac(circuit, fg, compute_noise=False)
        np.testing.assert_array_equal(result.cy, 0.0)

    def test_port_names_preserved(self, fg):
        circuit = Circuit()
        circuit.port("antenna", "a").port("receiver", "b")
        circuit.resistor("R1", "a", "b", 75.0)
        result = solve_ac(circuit, fg)
        assert result.port_names == ["antenna", "receiver"]

    def test_y_property_consistent_with_s(self, fg):
        import repro.rf.conversions as cv

        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 75.0)
        circuit.capacitor("C1", "b", "gnd", 1e-12)
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(result.y, cv.s_to_y(result.s), atol=1e-15)

    def test_frequency_dependent_noise_current(self, fg):
        # A rising-PSD source must give a rising output correlation.
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("R1", "a", "b", 75.0, temperature=0.0)
        circuit.noise_current("IN", "a", "gnd",
                              lambda f: 1e-22 * (f / 1e9))
        result = solve_ac(circuit, fg)
        magnitudes = np.abs(result.cy[:, 0, 0])
        assert np.all(np.diff(magnitudes) > 0)
