"""Microstrip model tests (repro.passives.microstrip)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.rf.frequency import FrequencyGrid


@pytest.fixture
def substrate():
    return MicrostripSubstrate()


class TestSynthesis:
    @given(st.floats(min_value=25.0, max_value=110.0))
    @settings(max_examples=25, deadline=None)
    def test_synthesis_analysis_roundtrip(self, z0_target):
        substrate = MicrostripSubstrate()
        width = synthesize_width(substrate, z0_target)
        line = MicrostripLine(substrate, width, 10e-3)
        assert line._z0_static == pytest.approx(z0_target, rel=2e-3)

    def test_wider_strip_lower_impedance(self, substrate):
        narrow = MicrostripLine(substrate, 0.3e-3, 10e-3)
        wide = MicrostripLine(substrate, 3.0e-3, 10e-3)
        assert wide._z0_static < narrow._z0_static

    def test_unrealizable_target_rejected(self, substrate):
        with pytest.raises(ValueError):
            synthesize_width(substrate, 500.0)
        with pytest.raises(ValueError):
            synthesize_width(substrate, -50.0)


class TestDispersion:
    def test_eps_eff_between_one_and_er(self, substrate):
        line = MicrostripLine(substrate, 1.1e-3, 10e-3)
        f = np.logspace(8, 10.5, 20)
        eps = line.eps_eff(f)
        assert np.all(eps > 1.0)
        assert np.all(eps < substrate.epsilon_r)

    def test_eps_eff_monotonic_in_frequency(self, substrate):
        line = MicrostripLine(substrate, 1.1e-3, 10e-3)
        f = np.logspace(8, 10.5, 30)
        eps = line.eps_eff(f)
        assert np.all(np.diff(eps) >= -1e-12)

    def test_eps_eff_approaches_er_at_high_f(self, substrate):
        line = MicrostripLine(substrate, 1.1e-3, 10e-3)
        assert line.eps_eff(1e12)[()] == pytest.approx(
            substrate.epsilon_r, rel=0.02
        )

    def test_losses_positive_and_growing(self, substrate):
        line = MicrostripLine(substrate, 1.1e-3, 10e-3)
        f = np.array([0.5e9, 1e9, 2e9, 4e9])
        alpha_c = line.alpha_conductor(f)
        alpha_d = line.alpha_dielectric(f)
        assert np.all(alpha_c > 0)
        assert np.all(alpha_d > 0)
        assert np.all(np.diff(alpha_c) > 0)  # ~ sqrt(f)
        assert np.all(np.diff(alpha_d) > 0)  # ~ f

    def test_electrical_length_scales_with_length(self, substrate):
        short = MicrostripLine(substrate, 1.1e-3, 5e-3)
        long = MicrostripLine(substrate, 1.1e-3, 10e-3)
        assert long.electrical_length_deg(1.5e9) == pytest.approx(
            2 * short.electrical_length_deg(1.5e9), rel=1e-9
        )


class TestNetworkViews:
    def test_line_two_port_passive_reciprocal(self, substrate):
        fg = FrequencyGrid.linear(0.5e9, 4e9, 7)
        line = MicrostripLine(substrate, 1.1e-3, 20e-3)
        network = line.as_twoport(fg)
        assert network.is_passive()
        assert network.is_reciprocal(tol=1e-9)

    def test_y_matrix_vectorized_equals_scalar(self, substrate):
        line = MicrostripLine(substrate, 1.1e-3, 15e-3)
        f = np.array([1.0e9, 1.7e9])
        stacked = line.y_matrix(f)
        np.testing.assert_allclose(stacked[0], line.y_matrix(1.0e9))
        np.testing.assert_allclose(stacked[1], line.y_matrix(1.7e9))

    def test_mna_insertion_matches_twoport(self, substrate):
        from repro.analysis.acsolver import solve_ac
        from repro.analysis.netlist import Circuit

        fg = FrequencyGrid.linear(0.8e9, 2e9, 5)
        line = MicrostripLine(substrate, 1.1e-3, 25e-3)
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        line.add_to(circuit, "a", "b")
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(
            result.s, line.as_twoport(fg).s, atol=1e-9
        )

    def test_quarter_wave_transformer(self, substrate):
        # A quarter-wave line of Z0 = sqrt(50*100) matches 100 ohm to 50.
        z_transform = np.sqrt(50.0 * 100.0)
        width = synthesize_width(substrate, z_transform)
        probe = MicrostripLine(substrate, width, 1e-3)
        f0 = 1.4e9
        eps = float(probe.eps_eff(f0))
        length = 3e8 / (4 * f0 * np.sqrt(eps))
        line = MicrostripLine(substrate, width, length)
        fg = FrequencyGrid.single(f0)
        network = line.as_twoport(fg)
        # Input reflection with a 100-ohm load, referenced to 50 ohm.
        gamma_load = (100.0 - 50.0) / (100.0 + 50.0)
        from repro.rf.gain import input_reflection

        gamma_in = input_reflection(network.s, gamma_load)
        assert abs(gamma_in[0]) < 0.05

    def test_invalid_geometry_rejected(self, substrate):
        with pytest.raises(ValueError):
            MicrostripLine(substrate, 0.0, 1e-3)
        with pytest.raises(ValueError):
            MicrostripLine(substrate, 1e-3, -1e-3)

    def test_substrate_validation(self):
        with pytest.raises(ValueError):
            MicrostripSubstrate(epsilon_r=0.5)
        with pytest.raises(ValueError):
            MicrostripSubstrate(height=-1e-3)
        with pytest.raises(ValueError):
            MicrostripSubstrate(tan_delta=-0.1)
