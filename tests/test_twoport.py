"""TwoPort container and elementary-network tests (repro.rf.twoport)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import (
    TwoPort,
    attenuator,
    ideal_transformer,
    series_impedance,
    shunt_admittance,
    shunt_impedance,
    thru,
    transmission_line,
)


@pytest.fixture
def fg():
    return FrequencyGrid.linear(1e9, 2e9, 5)


class TestConstruction:
    def test_shape_validation(self, fg):
        with pytest.raises(ValueError):
            TwoPort(fg, np.zeros((3, 2, 2)))

    def test_z0_validation(self, fg):
        with pytest.raises(ValueError):
            TwoPort(fg, np.zeros((5, 2, 2)), z0=-50.0)

    def test_representation_roundtrip(self, fg):
        # An L-section has non-degenerate S, Z, Y, and ABCD forms.
        network = series_impedance(fg, 30 + 40j) ** shunt_admittance(
            fg, 0.004 - 0.002j
        )
        rebuilt = TwoPort.from_z(fg, network.z)
        np.testing.assert_allclose(rebuilt.s, network.s, atol=1e-12)
        rebuilt_y = TwoPort.from_y(fg, network.y)
        np.testing.assert_allclose(rebuilt_y.s, network.s, atol=1e-12)
        rebuilt_a = TwoPort.from_abcd(fg, network.abcd)
        np.testing.assert_allclose(rebuilt_a.s, network.s, atol=1e-12)

    def test_s_element_accessors(self, fg):
        network = attenuator(fg, 6.0)
        np.testing.assert_array_equal(network.s11, network.s_element(1, 1))
        np.testing.assert_array_equal(network.s21, network.s_element(2, 1))


class TestElementaryNetworks:
    def test_thru_is_identity_for_cascade(self, fg):
        line = transmission_line(fg, 75.0, 0.3 + 0.8j)
        cascaded = thru(fg) ** line ** thru(fg)
        np.testing.assert_allclose(cascaded.s, line.s, atol=1e-12)

    def test_series_plus_shunt_is_l_section(self, fg):
        # Compose via cascade and verify against direct ABCD math.
        series = series_impedance(fg, 20j)
        shunt = shunt_admittance(fg, 0.01j)
        l_section = series ** shunt
        abcd = l_section.abcd
        np.testing.assert_allclose(abcd[:, 0, 0], 1.0 + 20j * 0.01j)
        np.testing.assert_allclose(abcd[:, 0, 1], 20j)
        np.testing.assert_allclose(abcd[:, 1, 0], 0.01j)
        np.testing.assert_allclose(abcd[:, 1, 1], 1.0)

    def test_shunt_impedance_matches_admittance(self, fg):
        a = shunt_impedance(fg, 100.0)
        b = shunt_admittance(fg, 0.01)
        np.testing.assert_allclose(a.s, b.s, atol=1e-12)

    def test_attenuator_loss_and_match(self, fg):
        pad = attenuator(fg, 10.0)
        np.testing.assert_allclose(np.abs(pad.s21), 10 ** (-0.5), rtol=1e-9)
        np.testing.assert_allclose(np.abs(pad.s11), 0.0, atol=1e-9)
        assert pad.is_passive()
        assert pad.is_reciprocal()

    def test_attenuator_zero_db_is_thru(self, fg):
        pad = attenuator(fg, 0.0)
        np.testing.assert_allclose(pad.s, thru(fg).s, atol=1e-12)

    def test_attenuator_rejects_negative(self, fg):
        with pytest.raises(ValueError):
            attenuator(fg, -3.0)

    def test_quarter_wave_line_inverts_impedance(self, fg):
        # A quarter-wave 100-ohm line transforms a short to an open:
        # S11 of (line ** short) must be +1-like at the input.
        line = transmission_line(fg, 100.0, 1j * np.pi / 2)
        zin = (
            line.abcd[:, 0, 0] * 0.0 + line.abcd[:, 0, 1]
        ) / (line.abcd[:, 1, 0] * 0.0 + line.abcd[:, 1, 1])
        # Zin = B/D for a shorted output.
        assert np.all(np.abs(zin) > 1e6)

    def test_half_wave_line_is_transparent(self, fg):
        line = transmission_line(fg, 100.0, 1j * np.pi)
        np.testing.assert_allclose(np.abs(line.s21), 1.0, rtol=1e-9)

    def test_lossy_line_is_passive(self, fg):
        line = transmission_line(fg, 60.0, 0.2 + 1.5j)
        assert line.is_passive()

    def test_transformer_impedance_scaling(self, fg):
        transformer = ideal_transformer(fg, 2.0)
        # Terminated in z0, input impedance must be 4 z0 -> S11 = 3/5.
        np.testing.assert_allclose(transformer.s11, 0.6, atol=1e-9)

    def test_transformer_rejects_zero_ratio(self, fg):
        with pytest.raises(ValueError):
            ideal_transformer(fg, 0.0)


class TestAlgebra:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_cascade_associative(self, seed):
        fg = FrequencyGrid.linear(1e9, 2e9, 3)
        rng = np.random.default_rng(seed)

        def random_network():
            s = 0.4 * (
                rng.standard_normal((3, 2, 2))
                + 1j * rng.standard_normal((3, 2, 2))
            )
            return TwoPort(fg, s)

        a, b, c = random_network(), random_network(), random_network()
        left = (a ** b) ** c
        right = a ** (b ** c)
        np.testing.assert_allclose(left.s, right.s, rtol=1e-8, atol=1e-10)

    def test_cascade_of_lines_adds_length(self, fg):
        half = transmission_line(fg, 75.0, 0.1 + 0.7j)
        full = transmission_line(fg, 75.0, 0.2 + 1.4j)
        np.testing.assert_allclose((half ** half).s, full.s, atol=1e-10)

    def test_parallel_adds_admittance(self, fg):
        # Two series-impedance two-ports in parallel-parallel connection
        # combine like the parallel impedance (their Y-matrices add).
        a = series_impedance(fg, 100.0)
        b = series_impedance(fg, 50.0)
        combined = a.parallel(b)
        expected = series_impedance(fg, 100.0 * 50.0 / 150.0)
        np.testing.assert_allclose(combined.s, expected.s, atol=1e-10)

    def test_series_adds_impedance(self, fg):
        # Two shunt-admittance two-ports in series-series connection
        # combine like series-connected shunt impedances (Z-matrices add).
        a = shunt_admittance(fg, 0.01)
        b = shunt_admittance(fg, 0.02)
        combined = a.series(b)
        expected = shunt_admittance(fg, 0.01 * 0.02 / 0.03)
        np.testing.assert_allclose(combined.s, expected.s, atol=1e-10)

    def test_flip_swaps_ports(self, fg):
        series = series_impedance(fg, 10 + 5j)
        asymmetric = series ** shunt_admittance(fg, 0.01j)
        flipped = asymmetric.flipped()
        np.testing.assert_array_equal(flipped.s11, asymmetric.s22)
        np.testing.assert_array_equal(flipped.s21, asymmetric.s12)

    def test_double_flip_is_identity(self, fg):
        network = attenuator(fg, 3.0) ** series_impedance(fg, 5j)
        np.testing.assert_array_equal(
            network.flipped().flipped().s, network.s
        )

    def test_renormalized_physical_invariance(self, fg):
        network = series_impedance(fg, 30 + 10j)
        re_normalized = network.renormalized(75.0).renormalized(50.0)
        np.testing.assert_allclose(re_normalized.s, network.s, atol=1e-10)

    def test_renormalized_matches_z_path(self, fg):
        # For a network with a valid Z representation, the bilinear
        # renormalization must agree with the Z-matrix route.
        import repro.rf.conversions as cv

        network = attenuator(fg, 7.0)
        direct = network.renormalized(75.0).s
        via_z = cv.z_to_s(cv.s_to_z(network.s, 50.0), 75.0)
        np.testing.assert_allclose(direct, via_z, atol=1e-10)

    def test_mismatched_grids_rejected(self):
        a = thru(FrequencyGrid.linear(1e9, 2e9, 5))
        b = thru(FrequencyGrid.linear(1e9, 2e9, 7))
        with pytest.raises(ValueError):
            a ** b

    def test_mismatched_z0_rejected(self, fg):
        a = thru(fg, z0=50.0)
        b = thru(fg, z0=75.0)
        with pytest.raises(ValueError):
            a ** b

    def test_cascade_type_error(self, fg):
        with pytest.raises(TypeError):
            thru(fg) ** 42

    def test_at_returns_matrix_near_frequency(self, fg):
        pad = attenuator(fg, 6.0)
        matrix = pad.at(1.5e9)
        assert matrix.shape == (2, 2)
        assert abs(matrix[1, 0]) == pytest.approx(10 ** (-0.3), rel=1e-9)


class TestPhysicalChecks:
    def test_active_network_not_passive(self, fg):
        s = np.zeros((5, 2, 2), dtype=complex)
        s[:, 1, 0] = 10.0  # 20 dB gain
        amp = TwoPort(fg, s)
        assert not amp.is_passive()

    def test_nonreciprocal_detected(self, fg):
        s = np.zeros((5, 2, 2), dtype=complex)
        s[:, 1, 0] = 0.5
        s[:, 0, 1] = 0.1
        isolator = TwoPort(fg, s)
        assert not isolator.is_reciprocal()
