"""DC operating-point solver tests (repro.analysis.dc)."""

import numpy as np
import pytest

from repro.analysis.dc import DcCircuit, DcConvergenceError
from repro.devices.dcmodels import AngelovModel, CurticeQuadratic


class TestLinearCircuits:
    def test_voltage_divider(self):
        circuit = DcCircuit("divider")
        circuit.vsource("V1", "top", "gnd", 10.0)
        circuit.resistor("R1", "top", "mid", 3e3)
        circuit.resistor("R2", "mid", "gnd", 7e3)
        solution = circuit.solve()
        # GMIN loading perturbs node voltages at the 1e-8 level.
        assert solution.v("mid") == pytest.approx(7.0, rel=1e-6)
        assert solution.v("top") == pytest.approx(10.0, rel=1e-6)
        assert solution.v("gnd") == 0.0

    def test_current_source_into_resistor(self):
        circuit = DcCircuit()
        circuit.isource("I1", "n1", "gnd", 2e-3)
        circuit.resistor("R1", "n1", "gnd", 1e3)
        solution = circuit.solve()
        assert solution.v("n1") == pytest.approx(2.0, rel=1e-6)

    def test_two_sources_superposition(self):
        circuit = DcCircuit()
        circuit.vsource("V1", "a", "gnd", 5.0)
        circuit.vsource("V2", "b", "gnd", 3.0)
        circuit.resistor("R1", "a", "mid", 1e3)
        circuit.resistor("R2", "b", "mid", 1e3)
        circuit.resistor("R3", "mid", "gnd", 1e3)
        solution = circuit.solve()
        # Node equation: (v-5)/1k + (v-3)/1k + v/1k = 0 -> v = 8/3.
        assert solution.v("mid") == pytest.approx(8.0 / 3.0, rel=1e-9)

    def test_floating_node_raises(self):
        circuit = DcCircuit("floating")
        circuit.vsource("V1", "a", "gnd", 1.0)
        circuit.resistor("R1", "a", "gnd", 1e3)
        circuit.isource("I1", "b", "c", 1e-3)
        # Nodes b and c only connect to each other through a current
        # source: held up only by GMIN, so voltages blow up -> the step
        # limiter prevents convergence.
        with pytest.raises(DcConvergenceError):
            circuit.solve(max_iterations=30)


class TestFetBias:
    def test_resistor_biased_fet_matches_scalar_solve(self):
        model = CurticeQuadratic(beta=0.2, vto=0.3, lambda_=0.05, alpha=3.0)
        circuit = DcCircuit("bias")
        circuit.vsource("VDD", "vdd", "gnd", 3.0)
        circuit.resistor("R1", "vdd", "gate", 47e3)
        circuit.resistor("R2", "gate", "gnd", 10e3)
        circuit.resistor("RD", "vdd", "drain", 150.0)
        circuit.fet("Q1", "drain", "gate", "gnd", model)
        solution = circuit.solve()
        vg = 3.0 * 10.0 / 57.0

        from scipy.optimize import brentq

        def residual(vd):
            return vd - (3.0 - 150.0 * float(model.ids(vg, vd)))

        vd_expected = brentq(residual, 0.0, 3.0)
        assert solution.v("gate") == pytest.approx(vg, rel=1e-6)
        assert solution.v("drain") == pytest.approx(vd_expected, rel=1e-6)
        bias = solution.fet_bias["Q1"]
        assert bias["ids"] == pytest.approx(
            float(model.ids(vg, vd_expected)), rel=1e-6
        )
        assert bias["gm"] > 0

    def test_source_degeneration_self_bias(self):
        # A source resistor introduces feedback; the solver must still
        # converge and the reported Vgs must satisfy KCL.
        model = AngelovModel()
        circuit = DcCircuit("selfbias")
        circuit.vsource("VDD", "vdd", "gnd", 3.0)
        circuit.vsource("VG", "gate", "gnd", 0.60)
        circuit.resistor("RD", "vdd", "drain", 100.0)
        circuit.resistor("RS", "src", "gnd", 10.0)
        circuit.fet("Q1", "drain", "gate", "src", model)
        solution = circuit.solve()
        bias = solution.fet_bias["Q1"]
        # KCL at the source node: Ids flows through RS.
        assert solution.v("src") == pytest.approx(
            bias["ids"] * 10.0, rel=1e-6
        )
        assert bias["vgs"] == pytest.approx(
            0.60 - solution.v("src"), rel=1e-9
        )

    def test_model_interface_enforced(self):
        class NotAModel:
            pass

        with pytest.raises(TypeError):
            DcCircuit().fet("Q1", "d", "g", "s", NotAModel())

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            DcCircuit().resistor("R1", "a", "b", -1.0)

    def test_iterations_reported(self):
        circuit = DcCircuit()
        circuit.vsource("V1", "a", "gnd", 1.0)
        circuit.resistor("R1", "a", "gnd", 1e3)
        solution = circuit.solve()
        assert solution.iterations >= 1
