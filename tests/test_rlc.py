"""Dispersive passive-component tests (repro.passives.rlc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.passives.rlc import (
    RealCapacitor,
    RealInductor,
    RealResistor,
    coilcraft_style_inductor,
    murata_style_capacitor,
    thin_film_resistor,
)
from repro.rf.frequency import FrequencyGrid


@pytest.fixture
def fg():
    return FrequencyGrid.linear(0.5e9, 2.5e9, 6)


class TestRealCapacitor:
    def test_low_frequency_is_capacitive(self):
        cap = RealCapacitor(10e-12)
        z = cap.impedance(10e6)
        assert z.imag < 0
        assert abs(z.imag) == pytest.approx(
            1 / (2 * np.pi * 10e6 * 10e-12), rel=1e-2
        )

    def test_inductive_above_srf(self):
        cap = RealCapacitor(10e-12, esl=1e-9)
        assert cap.impedance(5 * cap.srf_hz).imag > 0

    def test_esr_u_shape(self):
        # Dielectric loss dominates low f, conductor loss high f.
        cap = RealCapacitor(10e-12, esr_conductor_1ghz=0.05,
                            tan_delta=2e-3)
        esr = cap.esr(np.array([1e7, 1.5e9, 10e9]))
        assert esr[0] > esr[1]
        assert esr[2] > esr[1]

    def test_q_reciprocal_of_tand_at_low_f(self):
        cap = RealCapacitor(10e-12, esr_conductor_1ghz=0.0, tan_delta=1e-3,
                            esl=0.0)
        assert cap.q_factor(1e8) == pytest.approx(1e3, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RealCapacitor(-1e-12)
        with pytest.raises(ValueError):
            RealCapacitor(1e-12, esl=-1e-9)


class TestRealInductor:
    def test_q_rises_peaks_collapses(self):
        inductor = coilcraft_style_inductor(10e-9)
        f = np.array([0.1e9, 1.5e9, inductor.srf_hz])
        q = inductor.q_factor(f)
        assert q[0] < q[1]
        assert q[2] < 1.0  # Q ~ 0 at self-resonance

    def test_impedance_peaks_at_srf(self):
        inductor = RealInductor(10e-9, c_parallel=0.1e-12)
        f = np.array([0.5, 0.99, 1.5]) * inductor.srf_hz
        mag = np.abs(inductor.impedance(f))
        assert mag[1] > mag[0]
        assert mag[1] > mag[2]

    def test_low_frequency_inductive(self):
        inductor = RealInductor(10e-9, r_dc=0.1)
        z = inductor.impedance(1e8)
        assert z.imag == pytest.approx(2 * np.pi * 1e8 * 10e-9, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RealInductor(0.0)
        with pytest.raises(ValueError):
            RealInductor(1e-9, r_parallel=0.0)


class TestRealResistor:
    def test_dc_value(self):
        resistor = thin_film_resistor(100.0)
        assert resistor.impedance(1e6).real == pytest.approx(100.0,
                                                             rel=1e-4)

    def test_parasitics_matter_at_high_f(self):
        resistor = RealResistor(1000.0, c_parallel=0.1e-12)
        assert abs(resistor.impedance(10e9)) < 1000.0


class TestNetworkViews:
    def test_series_view_matches_mna_insertion(self, fg):
        component = murata_style_capacitor(5.6e-12, name="Ctest")
        analytic = component.as_series(fg)
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        component.add_to(circuit, "a", "b")
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(result.s, analytic.s, atol=1e-10)

    def test_shunt_view_matches_mna_insertion(self, fg):
        component = coilcraft_style_inductor(8.2e-9, name="Ltest")
        analytic = component.as_shunt(fg)
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        circuit.resistor("Rthru", "a", "b", 1e-6, temperature=0.0)
        component.add_to(circuit, "b", "gnd")
        result = solve_ac(circuit, fg)
        np.testing.assert_allclose(result.s, analytic.s, atol=1e-5)

    def test_mna_noise_matches_passive_equilibrium(self, fg):
        # The YBlock's thermal noise must equal NoisyTwoPort.from_passive.
        from repro.rf.noise import NoisyTwoPort

        component = thin_film_resistor(68.0, name="Rtest")
        circuit = Circuit()
        circuit.port("p1", "a").port("p2", "b")
        component.add_to(circuit, "a", "b")
        mna = solve_ac(circuit, fg).as_noisy_twoport()
        analytic = NoisyTwoPort.from_passive(
            component.as_series(fg), component.temperature
        )
        np.testing.assert_allclose(
            mna.noise_figure_db(), analytic.noise_figure_db(), rtol=1e-8
        )

    @given(st.floats(min_value=1e-12, max_value=100e-12))
    @settings(max_examples=20, deadline=None)
    def test_capacitor_two_port_always_passive(self, capacitance):
        fg = FrequencyGrid.linear(0.5e9, 3e9, 4)
        cap = murata_style_capacitor(capacitance)
        assert cap.as_series(fg).is_passive(tol=1e-9)

    @given(st.floats(min_value=1e-9, max_value=100e-9))
    @settings(max_examples=20, deadline=None)
    def test_inductor_two_port_always_passive(self, inductance):
        fg = FrequencyGrid.linear(0.5e9, 3e9, 4)
        inductor = coilcraft_style_inductor(inductance)
        assert inductor.as_series(fg).is_passive(tol=1e-9)
