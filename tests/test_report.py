"""Report-formatting tests (repro.core.report)."""

import numpy as np

from repro.core.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.5), ("beta-long-name", 22.125)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "alpha" in lines[3]
        assert "22.125" in lines[4]
        # All data rows share one width.
        assert len(lines[3]) == len(lines[4])

    def test_float_format_applied(self):
        text = format_table(["x"], [(3.14159,)], float_format="{:.1f}")
        assert "3.1" in text
        assert "3.14159" not in text

    def test_non_float_cells_passed_through(self):
        text = format_table(["a", "b"], [("yes", 7)])
        assert "yes" in text
        assert "7" in text

    def test_no_title(self):
        text = format_table(["a"], [(1.0,)])
        assert not text.startswith("\n")
        assert text.splitlines()[0].startswith("a")


class TestFormatSeries:
    def test_columns_paired_with_x(self):
        x = np.array([1.0, 2.0, 3.0])
        y1 = np.array([10.0, 20.0, 30.0])
        y2 = np.array([0.1, 0.2, 0.3])
        text = format_series("f", ["a", "b"], x, [y1, y2], title="curves")
        lines = text.splitlines()
        assert lines[0] == "curves"
        assert len(lines) == 2 + 1 + 3  # title + header + rule + rows
        assert "20.000" in lines[4]
        assert "0.200" in lines[4]
