"""De-embedding tests (repro.rf.deembedding).

Strategy: embed a known DUT into a synthetic fixture, generate the
calibration standards from the same fixture, and demand the de-embedded
result matches the bare DUT to numerical precision.
"""

import numpy as np
import pytest

from repro.rf.deembedding import open_short_deembed, split_thru, thru_deembed
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import (
    attenuator,
    series_impedance,
    shunt_admittance,
    thru,
    transmission_line,
)


@pytest.fixture
def fg():
    return FrequencyGrid.linear(0.5e9, 3e9, 9)


def _pad_fixture(fg, pad_c=0.12e-12, lead_r=0.8, lead_l=0.3e-9):
    """Pads: shunt C at each port; leads: series R+L at each port.

    Returns (pad, lead, open_std, short_std): the cascade elements for
    embedding plus the calibration standards built the way the dummy
    structures are physically laid out — pads alone (OPEN), and pads
    with the leads shorted at the DUT plane (SHORT); neither standard
    has a through path.
    """
    from repro.rf.twoport import TwoPort

    omega = fg.omega
    y_pad = 1j * omega * pad_c
    z_lead = lead_r + 1j * omega * lead_l
    pad = shunt_admittance(fg, y_pad)
    lead = series_impedance(fg, z_lead)

    y_open = np.zeros((len(fg), 2, 2), dtype=complex)
    y_open[:, 0, 0] = y_pad
    y_open[:, 1, 1] = y_pad
    open_std = TwoPort.from_y(fg, y_open)

    y_short = np.zeros((len(fg), 2, 2), dtype=complex)
    y_short[:, 0, 0] = y_pad + 1.0 / z_lead
    y_short[:, 1, 1] = y_pad + 1.0 / z_lead
    short_std = TwoPort.from_y(fg, y_short)
    return pad, lead, open_std, short_std


class TestOpenShort:
    def test_recovers_embedded_dut(self, fg):
        pad, lead, open_std, short_std = _pad_fixture(fg)
        dut = attenuator(fg, 4.0) ** series_impedance(fg, 10 + 5j)
        # Fixture: pad-lead [DUT] lead-pad on both sides.
        measured = pad ** lead ** dut ** lead.flipped() ** pad.flipped()
        recovered = open_short_deembed(measured, open_std, short_std)
        np.testing.assert_allclose(recovered.s, dut.s, atol=1e-7)

    def test_identity_fixture_is_noop(self, fg):
        # A negligible fixture: de-embedding changes nothing measurable.
        pad, lead, open_std, short_std = _pad_fixture(
            fg, pad_c=1e-18, lead_r=1e-9, lead_l=1e-15
        )
        dut = attenuator(fg, 7.0)
        measured = pad ** lead ** dut ** lead.flipped() ** pad.flipped()
        recovered = open_short_deembed(measured, open_std, short_std)
        np.testing.assert_allclose(recovered.s, dut.s, atol=1e-6)

    def test_grid_mismatch_rejected(self, fg):
        other = FrequencyGrid.linear(0.5e9, 3e9, 7)
        with pytest.raises(ValueError):
            open_short_deembed(attenuator(fg, 3.0),
                               attenuator(other, 3.0),
                               attenuator(fg, 3.0))


class TestThru:
    def test_split_thru_halves_compose(self, fg):
        fixture_half = transmission_line(fg, 55.0, 0.05 + 0.6j)
        full_thru = fixture_half ** fixture_half.flipped()
        half = split_thru(full_thru)
        recomposed = half ** half.flipped()
        np.testing.assert_allclose(recomposed.s, full_thru.s, atol=1e-8)

    def test_thru_deembed_recovers_dut(self, fg):
        fixture_half = transmission_line(fg, 55.0, 0.05 + 0.6j)
        dut = attenuator(fg, 6.0) ** shunt_admittance(fg, 0.002j)
        measured = fixture_half ** dut ** fixture_half.flipped()
        thru_std = fixture_half ** fixture_half.flipped()
        recovered = thru_deembed(measured, thru_std)
        np.testing.assert_allclose(recovered.s, dut.s, atol=1e-7)

    def test_perfect_thru_is_noop(self, fg):
        dut = attenuator(fg, 2.0)
        recovered = thru_deembed(dut, thru(fg))
        np.testing.assert_allclose(recovered.s, dut.s, atol=1e-9)
