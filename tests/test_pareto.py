"""Pareto utility tests (repro.optimize.pareto)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.pareto import (
    dominates,
    hypervolume_2d,
    pareto_filter,
    sweep_goal_front,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert not dominates([2, 2], [1, 1])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_partial_improvement_is_dominance(self):
        assert dominates([1, 2], [1, 3])

    def test_incomparable(self):
        assert not dominates([1, 3], [3, 1])
        assert not dominates([3, 1], [1, 3])

    @given(st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=50, deadline=None)
    def test_filter_keeps_only_nondominated(self, raw_points):
        points = np.array(raw_points)
        keep = pareto_filter(points)
        kept = points[keep]
        # No kept point dominated by any other input point.
        for kept_point in kept:
            for other in points:
                assert not dominates(other, kept_point)
        # Every dropped point dominated by someone.
        dropped = set(range(len(points))) - set(keep.tolist())
        for idx in dropped:
            assert any(
                dominates(points[j], points[idx]) for j in range(len(points))
            )

    def test_filter_shape_validated(self):
        with pytest.raises(ValueError):
            pareto_filter(np.zeros(5))


class TestHypervolume:
    def test_single_point(self):
        volume = hypervolume_2d(np.array([[1.0, 1.0]]), [3.0, 3.0])
        assert volume == pytest.approx(4.0)

    def test_point_outside_reference_ignored(self):
        volume = hypervolume_2d(np.array([[4.0, 4.0]]), [3.0, 3.0])
        assert volume == 0.0

    def test_staircase(self):
        points = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Union of two rectangles w.r.t. (3, 3): 2*1 + 1*2 = 4 minus
        # overlap 1*1 -> 3... computed by scanline: (3-1)*(3-2)+(3-2)*(2-1)=3.
        assert hypervolume_2d(points, [3.0, 3.0]) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = np.array([[1.0, 1.0]])
        extra = np.array([[1.0, 1.0], [2.0, 2.0]])
        ref = [3.0, 3.0]
        assert hypervolume_2d(extra, ref) == hypervolume_2d(base, ref)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((3, 3)), [1, 1, 1])

    def test_better_front_bigger_volume(self):
        worse = np.array([[2.0, 2.0]])
        better = np.array([[1.0, 1.0]])
        ref = [3.0, 3.0]
        assert hypervolume_2d(better, ref) > hypervolume_2d(worse, ref)


class TestSweepFront:
    def test_collects_and_sorts_front(self):
        class FakeResult:
            def __init__(self, objectives):
                self.objectives = objectives

        def solve(goals):
            # Fake solver: projects goals onto the front f1 + f2 = 2.
            t = goals[0] / (goals[0] + goals[1])
            return FakeResult(np.array([2 * t, 2 * (1 - t)]))

        goal_list = [np.array([g, 1 - g]) for g in (0.2, 0.5, 0.8)]
        front = sweep_goal_front(solve, goal_list)
        assert front.shape[1] == 2
        assert np.all(np.diff(front[:, 0]) > 0)
        assert np.all(np.diff(front[:, 1]) < 0)
