"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.devices.reference import make_reference_device
from repro.rf.frequency import FrequencyGrid


@pytest.fixture(scope="session")
def grid():
    """A small GNSS-band frequency grid used across tests."""
    return FrequencyGrid.linear(1.0e9, 2.0e9, 9)


@pytest.fixture(scope="session")
def wide_grid():
    """A wider grid covering 0.5-6 GHz."""
    return FrequencyGrid.logarithmic(0.5e9, 6.0e9, 13)


@pytest.fixture(scope="session")
def golden_device():
    """The canonical golden pHEMT (session-cached: it is deterministic)."""
    return make_reference_device()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
